// Async batched network front-end over the sharded engine.
//
// One epoll event-loop thread owns every socket — a single non-blocking
// listener plus N non-blocking connections; there is no thread per
// connection, so idle connections cost one epoll registration and a few KB.
// The loop's only jobs are framing and dispatch:
//
//   * READ  — bytes are fed to a per-connection FrameAssembler; every
//     complete frame is decoded (net/protocol.h) and its queries are
//     dispatched straight onto the ShardedEngine's worker pool via
//     SubmitAsync. The loop never evaluates a query itself.
//   * COMPLETE — the pool thread that finishes a gather runs the completion
//     callback: it fills the frame's slot in the connection's arrival-order
//     FIFO, and when the FIFO head becomes ready, encodes and stages the
//     response bytes and wakes the loop through an eventfd. Responses are
//     therefore PIPELINED per connection: many request frames may be in
//     flight, and answers always come back in arrival order.
//   * WRITE — the loop drains each connection's staged bytes with
//     non-blocking sends, falling back to EPOLLOUT when the socket's buffer
//     fills.
//   * UPDATES — write frames are not applied one by one: they accumulate in
//     a pending batch that is flushed through one ApplyUpdates call when
//     `update_batch` frames have arrived, and otherwise within one poll
//     round (an update parked in round i flushes by the end of round i+1,
//     even under sustained traffic on other connections). Same coalescing
//     economics as the CLI's --update-batch: one forked publish per batch,
//     not per write. Each frame still gets its
//     own response with its own assigned ids.
//
// Ordering contract: responses are in request-arrival order per connection,
// but EXECUTION order across request types is not guaranteed — a read
// pipelined behind an update may run against the pre-update snapshot (its
// response still waits behind the update's). A client needing
// read-your-writes waits for the update response before issuing reads.
//
// Error handling: a request the server cannot decode still yields a
// response frame (type kError) so pipelined clients never stall, after
// which the connection is closed — framing may be intact but the stream is
// no longer trusted. An unframeable byte stream (oversized or zero length
// prefix) is answered the same way and closed immediately.
#ifndef TQCOVER_NET_SERVER_H_
#define TQCOVER_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/protocol.h"
#include "runtime/serving_engine.h"

namespace tq::net {

struct NetServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see port()).
  uint16_t port = 0;
  /// Payload cap per frame, both directions; larger length prefixes close
  /// the connection.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Update frames coalesced into one ApplyUpdates publish. The pending
  /// batch also flushes after one poll round regardless, so a lone update
  /// is never parked behind an unreachable threshold or starved by other
  /// connections' traffic.
  size_t update_batch = 1;
  int listen_backlog = 64;
  /// Per-connection frame-trace sampling: every `trace_sample`-th read
  /// frame (the first included) gets a TraceContext threaded through its
  /// sub-queries and lands in the engine's recent-trace ring. 0 disables
  /// frame traces entirely. Sampling keeps the pipelined hot path's
  /// allocation cost amortized; untraced cache-miss queries still get
  /// engine-owned traces, so slow-query coverage does not depend on it.
  size_t trace_sample = 32;
  /// Backpressure watermarks on a connection's staged-but-unsent response
  /// bytes. When the backlog reaches `outbox_high_bytes` the server stops
  /// READING from that connection (EPOLLIN deregistered; the TCP receive
  /// window then closes end-to-end) until the client drains it back below
  /// `outbox_low_bytes` — so a client that pipelines requests without ever
  /// reading responses caps the server's per-connection memory at roughly
  /// high + one read buffer of responses instead of growing without bound.
  /// Subscription pushes to a connection at/above the high watermark are
  /// DROPPED (the epoch still advances, so the client detects the gap).
  /// 0 disables pausing (and push dropping) entirely.
  size_t outbox_high_bytes = 4u << 20;
  size_t outbox_low_bytes = 1u << 20;
  /// Admission control: when more than this many engine sub-queries are
  /// queued or running on behalf of the whole server, new kSum/kTopK/kBound
  /// frames are answered immediately with StatusCode::kOverloaded instead
  /// of being dispatched (`net_shed` counts them). Already-dispatched work
  /// and inline frame types (stats, heartbeat, subscribe, update) are never
  /// shed. 0 disables admission control.
  size_t max_queued = 0;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel's autotuned
  /// default. Setting it pins the kernel-side buffering per connection,
  /// which makes the watermark/drop behavior above deterministic — the
  /// backpressure tests rely on that; production normally leaves it 0.
  int sndbuf_bytes = 0;
};

/// The TCP front-end. Construction binds nothing; Start() binds, listens,
/// and spawns the event-loop thread; Stop() (idempotent, also run by the
/// destructor) drains in-flight work and closes every socket. The engine
/// must outlive the server.
///
/// The server speaks to any runtime::ServingEngine — the in-process
/// ShardedEngine (a single process or a shard worker, which additionally
/// answers kRegister/kHeartbeat/kBound) or the RemoteShardSet coordinator
/// (whose Workers() table fills kStatus and whose Tick() drives heartbeats
/// off this loop's timerfd).
class NetServer {
 public:
  NetServer(runtime::ServingEngine* engine, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  Status Start();
  /// Flushes the pending update batch, waits for every dispatched query to
  /// complete, then closes all sockets. Responses already staged are given
  /// one best-effort non-blocking flush; undeliverable ones are dropped
  /// (clients see EOF).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actually-bound port (resolves port 0 requests after Start()).
  uint16_t port() const { return port_; }

  /// Standing queries currently registered (all connections). Test/monitor
  /// helper; the subs_* metrics carry the cumulative story.
  size_t active_subscriptions() const;

 private:
  struct Connection;
  struct PendingUpdate;
  struct Subscription;

  void EventLoop();
  void Accept();
  void ReadFrom(const std::shared_ptr<Connection>& conn);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const std::string& payload);
  void DispatchSum(const std::shared_ptr<Connection>& conn, uint64_t seq,
                   NetRequest request, runtime::TraceContextPtr trace,
                   uint64_t rx_ns);
  void DispatchTopK(const std::shared_ptr<Connection>& conn, uint64_t seq,
                    NetRequest request, runtime::TraceContextPtr trace,
                    uint64_t rx_ns);
  /// The shared fan-in machinery of both batched read paths: one engine
  /// sub-query per item (`make_request` is only invoked during this call),
  /// each completion extracts its per-query Result, and the last one
  /// encodes the response frame into `results_field` and completes slot
  /// `seq`. `trace` (nullable) is the frame's sampled trace — shared by
  /// every sub-query, encode-span'd and finished by the last completion.
  /// `rx_ns` (0 = untimed) is the frame's decode timestamp feeding the
  /// kNetFrame histogram.
  template <typename Result>
  void DispatchBatch(
      const std::shared_ptr<Connection>& conn, uint64_t seq,
      MessageType type, size_t count,
      const std::function<runtime::QueryRequest(size_t)>& make_request,
      std::function<Result(runtime::QueryResponse&&)> extract,
      std::vector<Result> NetResponse::* results_field,
      runtime::TraceContextPtr trace, uint64_t rx_ns);
  void FlushUpdates();
  /// Re-arms the one-shot timerfd to the nearest pending deadline (update
  /// flush, engine tick) — a no-op syscall-wise when the target is
  /// unchanged. Loop thread only.
  void RearmTimer();
  /// Fills slot `seq` with encoded bytes and stages any newly-ready FIFO
  /// prefix for writing. Safe from any thread. A non-zero `rx_ns` (the
  /// frame's decode timestamp) records decode-to-staged latency into the
  /// kNetFrame histogram.
  void Complete(const std::shared_ptr<Connection>& conn, uint64_t seq,
                std::string frame_bytes, uint64_t rx_ns = 0);
  /// Non-blocking send of a connection's staged bytes (loop thread only).
  void FlushOutbox(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void WakeLoop();
  /// Claims the next arrival-order response slot (any thread).
  uint64_t AllocSlot(Connection* conn);
  /// Recomputes a connection's epoll interest set (loop thread only).
  void UpdateInterest(Connection* conn);
  /// Stages an error response into the next FIFO slot and begins a graceful
  /// close (answer everything already pipelined, then hang up).
  void FailConnection(const std::shared_ptr<Connection>& conn,
                      MessageType type, Status status);
  /// Answers one frame inline on the loop thread (stats, register, errors,
  /// shed responses, subscribe acks): encodes and completes the next slot.
  void AnswerInline(const std::shared_ptr<Connection>& conn,
                    NetResponse&& resp, uint64_t rx_ns);
  /// Applies the backpressure watermarks to a connection's current backlog
  /// (loop thread only): pauses reads at/above high, resumes at/below low.
  void ReconsiderPause(const std::shared_ptr<Connection>& conn,
                       size_t backlog);
  /// True when admission control should shed new dispatchable work.
  bool Overloaded() const {
    return options_.max_queued != 0 &&
           queued_work_.load(std::memory_order_relaxed) >=
               options_.max_queued;
  }
  /// Registers a standing query for `conn` and dispatches its initial
  /// evaluation. Returns the assigned subscription id.
  uint64_t AddSubscription(const std::shared_ptr<Connection>& conn,
                           const NetRequest& request);
  /// Removes one subscription if it exists AND belongs to `conn`.
  bool RemoveSubscription(const Connection* conn, uint64_t sub_id);
  /// Drops every subscription registered by a closing connection.
  void DropConnectionSubscriptions(const Connection* conn);
  /// Publish hook: walks the registry, skips subscriptions whose recorded
  /// generation vector already matches `generations`, and re-evaluates the
  /// rest (at most one in-flight evaluation per subscription; publishes
  /// landing mid-evaluation coalesce into one follow-up pass).
  void NotifySubscriptions(const std::vector<uint64_t>& generations);
  /// Dispatches one subscription evaluation onto the engine pool. Caller
  /// must have marked the subscription in-flight under subs_mu_ and counted
  /// it via BeginWork().
  void DispatchSubEval(uint64_t sub_id, SubscriptionKind kind,
                       FacilityId facility, uint32_t k,
                       std::shared_ptr<Connection> conn);
  /// Appends one already-encoded unsolicited frame to a connection's outbox
  /// (any thread), bypassing the request FIFO — frames are atomic units, so
  /// a push can ride between two solicited responses but never inside one.
  /// Returns false (frame dropped) when the connection is closed or its
  /// backlog would cross the high watermark.
  bool StagePush(const std::shared_ptr<Connection>& conn,
                 const std::string& frame_bytes);
  /// In-flight work accounting shared by every dispatched engine call:
  /// Stop() waits on it, and admission control reads the atomic mirror.
  void BeginWork(size_t n);
  void EndWork();

  runtime::ServingEngine* engine_;
  runtime::MetricsRegistry* metrics_;
  NetServerOptions options_;
  /// The serving ψ, fixed for the engine's lifetime (the catalog is shared
  /// unchanged across publishes) — cached so the per-frame mismatch check
  /// does not take the snapshot mutex.
  double engine_psi_ = 0.0;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;   // eventfd: completion callbacks wake the loop
  /// One CLOCK_MONOTONIC timerfd carries BOTH timed duties of the loop —
  /// the parked-update flush and the engine's periodic Tick — so
  /// epoll_wait always blocks with timeout -1 instead of recomputing a
  /// timeout every poll round. One-shot, re-armed to the nearest deadline.
  int timer_fd_ = -1;
  int spare_fd_ = -1;  // reserve fd, sacrificed to shed accepts on EMFILE
  uint16_t port_ = 0;
  // Timer deadlines (loop thread only, NowNs clock, 0 = none).
  uint64_t flush_deadline_ns_ = 0;  // set when the first update is parked
  uint64_t next_tick_ns_ = 0;       // next engine Tick, when period > 0
  uint64_t tick_period_ns_ = 0;
  uint64_t timer_armed_ns_ = 0;     // what the timerfd is currently set to
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Loop-thread-only state.
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::vector<PendingUpdate> pending_updates_;

  // Connections with staged response bytes, appended by completion
  // callbacks (any thread) and drained by the loop on each wake.
  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Connection>> dirty_;

  // Outstanding engine sub-queries; Stop() waits for zero so no callback
  // can outlive the server.
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  size_t inflight_ = 0;
  /// Relaxed mirror of inflight_ for the admission-control fast path (the
  /// loop thread must not contend on inflight_mu_ per frame).
  std::atomic<size_t> queued_work_{0};

  // Standing-query registry. Mutated by the loop thread (subscribe /
  // unsubscribe / publish notification / connection close) and by
  // evaluation completions on pool threads (epoch assignment, coalesced
  // redispatch) — guarded by subs_mu_, never held across a blocking call.
  mutable std::mutex subs_mu_;
  std::unordered_map<uint64_t, Subscription> subs_;
  uint64_t next_sub_id_ = 1;
};

}  // namespace tq::net

#endif  // TQCOVER_NET_SERVER_H_
