#include "traj/trajectory.h"

// TrajectoryView and SegmentRef are header-only; this translation unit exists
// so the build exposes a stable object for the module.

namespace tq {}  // namespace tq
