// Trajectory identifiers and views.
//
// Trajectories are stored columnar (one flat point array + offsets) in
// TrajectorySet; a TrajectoryView is a cheap non-owning window, following the
// Slice idiom of storage engines.
#ifndef TQCOVER_TRAJ_TRAJECTORY_H_
#define TQCOVER_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <span>

#include "geom/point.h"
#include "geom/rect.h"

namespace tq {

/// Index of a user trajectory within its TrajectorySet.
using UserId = uint32_t;
/// Index of a facility trajectory within its TrajectorySet.
using FacilityId = uint32_t;

inline constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// Non-owning view of one trajectory.
struct TrajectoryView {
  uint32_t id = kInvalidId;
  std::span<const Point> points;

  size_t NumPoints() const { return points.size(); }
  const Point& Source() const { return points.front(); }
  const Point& Destination() const { return points.back(); }
};

/// One segment (consecutive point pair) of a trajectory — the unit stored by
/// the Segmented TQ-tree (§III-A).
struct SegmentRef {
  uint32_t traj_id = kInvalidId;
  uint32_t seg_index = 0;  // segment (i) connects points (i) and (i+1)
};

}  // namespace tq

#endif  // TQCOVER_TRAJ_TRAJECTORY_H_
