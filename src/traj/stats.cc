#include "traj/stats.h"

#include <cstdio>

namespace tq {

DatasetStats ComputeStats(const TrajectorySet& set) {
  DatasetStats s;
  s.num_trajectories = set.size();
  s.total_points = set.TotalPoints();
  s.avg_points = set.empty() ? 0.0
                             : static_cast<double>(s.total_points) /
                                   static_cast<double>(s.num_trajectories);
  double total_len = 0.0;
  for (uint32_t id = 0; id < set.size(); ++id) total_len += set.length(id);
  s.avg_length = set.empty() ? 0.0
                             : total_len /
                                   static_cast<double>(s.num_trajectories);
  s.extent = set.BoundingBox();
  return s;
}

std::string DatasetStats::ToString(const std::string& name) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-12s trajectories=%-9zu points=%-9zu avg_pts=%5.2f "
                "avg_len_m=%8.1f",
                name.c_str(), num_trajectories, total_points, avg_points,
                avg_length);
  return buf;
}

}  // namespace tq
