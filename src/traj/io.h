// CSV import/export for trajectory sets, so real datasets (e.g. NYC TLC
// trips, Geolife) can be plugged in place of the synthetic generators.
//
// Format: one trajectory per line, points separated by ';', coordinates by
// ',':  x1,y1;x2,y2;...  Blank lines and lines starting with '#' are skipped.
#ifndef TQCOVER_TRAJ_IO_H_
#define TQCOVER_TRAJ_IO_H_

#include <string>

#include "common/status.h"
#include "traj/dataset.h"

namespace tq {

/// Parses a trajectory file into `out` (appended). Fails with IOError /
/// InvalidArgument on unreadable files or malformed lines.
Status LoadTrajectoryCsv(const std::string& path, TrajectorySet* out);

/// Writes `set` in the same format.
Status SaveTrajectoryCsv(const std::string& path, const TrajectorySet& set);

/// Parses a single CSV line ("x1,y1;x2,y2") into points appended to `out`.
Status ParseTrajectoryLine(const std::string& line, std::vector<Point>* out);

/// Packed binary format ("TQJ1" magic) — ~6× smaller and ~20× faster than
/// CSV for million-trip sets; the natural companion of SaveTQTree.
Status SaveTrajectoryBinary(const std::string& path,
                            const TrajectorySet& set);

/// Loads a file written by SaveTrajectoryBinary into `out` (appended).
Status LoadTrajectoryBinary(const std::string& path, TrajectorySet* out);

}  // namespace tq

#endif  // TQCOVER_TRAJ_IO_H_
