// Dataset summary statistics (the numbers behind Tables I and II).
#ifndef TQCOVER_TRAJ_STATS_H_
#define TQCOVER_TRAJ_STATS_H_

#include <string>

#include "traj/dataset.h"

namespace tq {

/// Summary of a trajectory set.
struct DatasetStats {
  size_t num_trajectories = 0;
  size_t total_points = 0;
  double avg_points = 0.0;
  double avg_length = 0.0;
  Rect extent;

  std::string ToString(const std::string& name) const;
};

DatasetStats ComputeStats(const TrajectorySet& set);

}  // namespace tq

#endif  // TQCOVER_TRAJ_STATS_H_
