#include "traj/dataset.h"

#include "common/check.h"
#include "geom/distance.h"

namespace tq {

uint32_t TrajectorySet::Add(std::span<const Point> points) {
  TQ_CHECK_MSG(!points.empty(), "trajectory must have at least one point");
  const auto id = static_cast<uint32_t>(size());
  points_.insert(points_.end(), points.begin(), points.end());
  offsets_.push_back(points_.size());
  mbrs_.push_back(Rect::BoundingBox(points));
  lengths_.push_back(PolylineLength(points));
  return id;
}

Rect TrajectorySet::BoundingBox() const {
  Rect r = Rect::Empty();
  for (const Rect& m : mbrs_) r = r.UnionWith(m);
  return r;
}

void TrajectorySet::Reserve(size_t num_trajectories, size_t avg_points) {
  points_.reserve(num_trajectories * avg_points);
  offsets_.reserve(num_trajectories + 1);
  mbrs_.reserve(num_trajectories);
  lengths_.reserve(num_trajectories);
}

}  // namespace tq
