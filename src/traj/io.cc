#include "traj/io.h"

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tq {

Status ParseTrajectoryLine(const std::string& line, std::vector<Point>* out) {
  const size_t size_before = out->size();
  size_t pos = 0;
  while (pos < line.size()) {
    size_t end = line.find(';', pos);
    if (end == std::string::npos) end = line.size();
    const size_t comma = line.find(',', pos);
    if (comma == std::string::npos || comma >= end) {
      return Status::InvalidArgument("malformed point in: " + line);
    }
    Point p;
    auto r1 = std::from_chars(line.data() + pos, line.data() + comma, p.x);
    auto r2 =
        std::from_chars(line.data() + comma + 1, line.data() + end, p.y);
    if (r1.ec != std::errc() || r2.ec != std::errc()) {
      return Status::InvalidArgument("bad coordinate in: " + line);
    }
    out->push_back(p);
    pos = end + 1;
  }
  if (out->size() == size_before) {
    return Status::InvalidArgument("empty trajectory line");
  }
  return Status::OK();
}

Status LoadTrajectoryCsv(const std::string& path, TrajectorySet* out) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string line;
  std::vector<Point> points;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    points.clear();
    Status st = ParseTrajectoryLine(line, &points);
    if (!st.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + st.message());
    }
    out->Add(points);
  }
  return Status::OK();
}

namespace {
constexpr char kTrajMagic[4] = {'T', 'Q', 'J', '1'};
}  // namespace

Status SaveTrajectoryBinary(const std::string& path,
                            const TrajectorySet& set) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    return Status::IOError("cannot write " + path + ": " +
                           std::strerror(errno));
  }
  os.write(kTrajMagic, sizeof(kTrajMagic));
  const uint64_t count = set.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (uint32_t id = 0; id < set.size(); ++id) {
    const auto pts = set.points(id);
    const uint32_t n = static_cast<uint32_t>(pts.size());
    os.write(reinterpret_cast<const char*>(&n), sizeof(n));
    os.write(reinterpret_cast<const char*>(pts.data()),
             static_cast<std::streamsize>(n * sizeof(Point)));
  }
  if (!os.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status LoadTrajectoryBinary(const std::string& path, TrajectorySet* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is.good() || std::memcmp(magic, kTrajMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument(path + ": not a trajectory binary file");
  }
  uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is.good()) return Status::InvalidArgument(path + ": truncated");
  std::vector<Point> pts;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t n = 0;
    is.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!is.good() || n == 0 || n > (1u << 24)) {
      return Status::InvalidArgument(path + ": corrupt trajectory " +
                                     std::to_string(i));
    }
    pts.resize(n);
    is.read(reinterpret_cast<char*>(pts.data()),
            static_cast<std::streamsize>(n * sizeof(Point)));
    if (!is.good()) {
      return Status::InvalidArgument(path + ": truncated trajectory " +
                                     std::to_string(i));
    }
    out->Add(pts);
  }
  return Status::OK();
}

Status SaveTrajectoryCsv(const std::string& path, const TrajectorySet& set) {
  std::ofstream os(path);
  if (!os) {
    return Status::IOError("cannot write " + path + ": " +
                           std::strerror(errno));
  }
  os.precision(3);
  os << std::fixed;
  for (uint32_t id = 0; id < set.size(); ++id) {
    bool first = true;
    for (const Point& p : set.points(id)) {
      if (!first) os << ';';
      os << p.x << ',' << p.y;
      first = false;
    }
    os << '\n';
  }
  if (!os.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace tq
