// Columnar container for a set of trajectories (users or facilities).
#ifndef TQCOVER_TRAJ_DATASET_H_
#define TQCOVER_TRAJ_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "traj/trajectory.h"

namespace tq {

/// Owning, append-only trajectory store. Points live in one flat array;
/// per-trajectory offsets, MBRs and lengths are materialised at Add() time so
/// index construction and service evaluation never re-derive them.
class TrajectorySet {
 public:
  TrajectorySet() = default;

  /// Appends a trajectory (>= 1 point; a 2-point trajectory is a
  /// source-destination pair). Returns its id.
  uint32_t Add(std::span<const Point> points);

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  std::span<const Point> points(uint32_t id) const {
    return std::span<const Point>(points_.data() + offsets_[id],
                                  offsets_[id + 1] - offsets_[id]);
  }
  TrajectoryView view(uint32_t id) const {
    return TrajectoryView{id, points(id)};
  }
  size_t NumPoints(uint32_t id) const {
    return offsets_[id + 1] - offsets_[id];
  }
  const Rect& mbr(uint32_t id) const { return mbrs_[id]; }
  double length(uint32_t id) const { return lengths_[id]; }

  /// Total number of points across all trajectories.
  size_t TotalPoints() const { return points_.size(); }

  /// Bounding box of the whole set.
  Rect BoundingBox() const;

  /// Reserves storage for `num_trajectories` with `avg_points` each.
  void Reserve(size_t num_trajectories, size_t avg_points);

 private:
  std::vector<Point> points_;
  std::vector<size_t> offsets_ = {0};
  std::vector<Rect> mbrs_;
  std::vector<double> lengths_;
};

}  // namespace tq

#endif  // TQCOVER_TRAJ_DATASET_H_
