// Adaptive z-order cell tree.
//
// Implements the paper's "ordered bucketing" subdivision (§III): the space of
// a q-node is recursively partitioned until every cell holds at most β points
// (start points or end points of the node's trajectories). Leaf cells carry
// variable-depth ZIds; locating a point yields its z-id, and covering a query
// rectangle yields the sorted, merged key ranges used by zReduce.
#ifndef TQCOVER_ZORDER_CELL_TREE_H_
#define TQCOVER_ZORDER_CELL_TREE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "zorder/zid.h"

namespace tq {

/// Sorted half-open key ranges [first, second) over full-depth Morton keys.
using ZKeyRanges = std::vector<std::pair<uint64_t, uint64_t>>;

/// Quadtree over a fixed point multiset, subdividing while a cell holds more
/// than `beta` points (up to kMaxZDepth). Immutable after construction.
class CellTree {
 public:
  CellTree(const Rect& world, std::span<const Point> points, size_t beta);

  const Rect& world() const { return world_; }
  size_t num_leaves() const { return num_leaves_; }

  /// Leaf cell containing `p` (clamped into the world box).
  ZId Locate(const Point& p) const;

  /// All leaf cells whose rectangle intersects `query`, in ascending key
  /// order. `expand` grows each cell before the test (pass ψ to find cells a
  /// facility can serve "fully or partially", Example 4).
  std::vector<ZId> CoverIntersecting(const Rect& query,
                                     double expand = 0.0) const;

  /// Same cover, but returned as merged contiguous key ranges — the form
  /// zReduce consumes for range scans over the sorted trajectory list.
  ZKeyRanges CoverRanges(const Rect& query, double expand = 0.0) const;

  /// Merged key ranges of leaf cells that intersect the ψ-corridor of a stop
  /// set — cells with at least one stop within `psi` (the paper's "the stop
  /// points in G are within ψ distance to serve ... portions of these
  /// z-nodes", Example 4). Far tighter than CoverRanges over the stops'
  /// bounding box when the stops trace a long thin route. Stops are filtered
  /// per subtree during the descent, so cost tracks the corridor, not the
  /// whole tree.
  ///
  /// `covered_leaves` (optional) receives the number of leaf cells in the
  /// cover; leaves hold ≤ β points each, so covered/total approximates the
  /// fraction of indexed points the filter would let through — the
  /// selectivity estimate zReduce uses to decide whether filtering pays.
  ZKeyRanges CoverRangesNearStops(std::span<const Point> stops, double psi,
                                  size_t* covered_leaves = nullptr) const;

  /// Allocation-light variant for hot paths: appends into `*out` (cleared
  /// first); scratch space is reused across calls via thread-local buffers.
  void CoverRangesNearStopsInto(std::span<const Point> stops, double psi,
                                ZKeyRanges* out,
                                size_t* covered_leaves = nullptr) const;

 private:
  struct Node {
    ZId id;
    Rect rect;
    int32_t first_child = -1;  // index of child 0; children are contiguous
    bool IsLeaf() const { return first_child < 0; }
  };

  void Build(int32_t node_index, std::vector<Point>&& points, size_t beta);

  Rect world_;
  std::vector<Node> nodes_;
  size_t num_leaves_ = 0;
};

/// True iff `key` (a full-depth Morton key) falls inside one of the sorted,
/// disjoint `ranges`. Binary search.
bool RangesContain(const ZKeyRanges& ranges, uint64_t key);

}  // namespace tq

#endif  // TQCOVER_ZORDER_CELL_TREE_H_
