#include "zorder/cell_tree.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "geom/distance.h"

namespace tq {

CellTree::CellTree(const Rect& world, std::span<const Point> points,
                   size_t beta)
    : world_(world) {
  TQ_CHECK(beta > 0);
  nodes_.push_back(Node{ZId{}, world, -1});
  std::vector<Point> owned(points.begin(), points.end());
  Build(0, std::move(owned), beta);
}

void CellTree::Build(int32_t node_index, std::vector<Point>&& points,
                     size_t beta) {
  if (points.size() <= beta || nodes_[node_index].id.depth >= kMaxZDepth) {
    ++num_leaves_;
    return;
  }
  std::array<std::vector<Point>, 4> parts;
  {
    const Rect rect = nodes_[node_index].rect;
    for (const Point& p : points) {
      parts[static_cast<size_t>(rect.QuadrantOf(p))].push_back(p);
    }
    points.clear();
  }
  const auto first = static_cast<int32_t>(nodes_.size());
  nodes_[node_index].first_child = first;
  for (int q = 0; q < 4; ++q) {
    const Node& parent = nodes_[node_index];
    nodes_.push_back(
        Node{parent.id.Child(q), parent.rect.Quadrant(q), -1});
  }
  for (int q = 0; q < 4; ++q) {
    Build(first + q, std::move(parts[static_cast<size_t>(q)]), beta);
  }
}

ZId CellTree::Locate(const Point& p) const {
  int32_t idx = 0;
  while (!nodes_[static_cast<size_t>(idx)].IsLeaf()) {
    const Node& n = nodes_[static_cast<size_t>(idx)];
    idx = n.first_child + n.rect.QuadrantOf(p);
  }
  return nodes_[static_cast<size_t>(idx)].id;
}

std::vector<ZId> CellTree::CoverIntersecting(const Rect& query,
                                             double expand) const {
  std::vector<ZId> out;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(idx)];
    const Rect probe = expand > 0.0 ? n.rect.Expanded(expand) : n.rect;
    if (!probe.Intersects(query)) continue;
    if (n.IsLeaf()) {
      out.push_back(n.id);
    } else {
      // Push in reverse so children pop in Morton order → ascending keys.
      for (int q = 3; q >= 0; --q) stack.push_back(n.first_child + q);
    }
  }
  return out;
}

ZKeyRanges CellTree::CoverRanges(const Rect& query, double expand) const {
  const std::vector<ZId> cells = CoverIntersecting(query, expand);
  ZKeyRanges ranges;
  for (const ZId& c : cells) {
    const uint64_t begin = c.RangeBegin();
    const uint64_t end = c.RangeEnd();
    if (!ranges.empty() && ranges.back().second == begin) {
      ranges.back().second = end;  // merge adjacent cells
    } else {
      ranges.emplace_back(begin, end);
    }
  }
  return ranges;
}

namespace {

void AppendRange(ZKeyRanges* ranges, uint64_t begin, uint64_t end) {
  if (!ranges->empty() && ranges->back().second == begin) {
    ranges->back().second = end;
  } else {
    ranges->emplace_back(begin, end);
  }
}

}  // namespace

ZKeyRanges CellTree::CoverRangesNearStops(std::span<const Point> stops,
                                          double psi,
                                          size_t* covered_leaves) const {
  ZKeyRanges ranges;
  CoverRangesNearStopsInto(stops, psi, &ranges, covered_leaves);
  return ranges;
}

void CellTree::CoverRangesNearStopsInto(std::span<const Point> stops,
                                        double psi, ZKeyRanges* out,
                                        size_t* covered_leaves) const {
  out->clear();
  size_t leaves = 0;
  if (covered_leaves != nullptr) *covered_leaves = 0;
  if (stops.empty()) return;
  // DFS in Morton order, narrowing the relevant stop subset per subtree so
  // the walk only descends along the corridor. The subset stack lives in one
  // shared buffer (append on descent, truncate on return) so the walk does
  // not allocate per node; the buffer itself is reused across calls.
  static thread_local std::vector<uint32_t> buf;
  buf.clear();
  for (uint32_t si = 0; si < stops.size(); ++si) {
    if (DiskIntersectsRect(stops[si], psi, nodes_[0].rect)) {
      buf.push_back(si);
    }
  }
  if (buf.empty()) return;

  auto walk = [&](auto&& self, int32_t idx, size_t begin,
                  size_t end) -> void {
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (n.IsLeaf()) {
      AppendRange(out, n.id.RangeBegin(), n.id.RangeEnd());
      ++leaves;
      return;
    }
    for (int q = 0; q < 4; ++q) {
      const int32_t child = n.first_child + q;
      const Rect& crect = nodes_[static_cast<size_t>(child)].rect;
      const size_t child_begin = buf.size();
      for (size_t i = begin; i < end; ++i) {
        if (DiskIntersectsRect(stops[buf[i]], psi, crect)) {
          buf.push_back(buf[i]);
        }
      }
      const size_t child_end = buf.size();
      if (child_end > child_begin) self(self, child, child_begin, child_end);
      buf.resize(child_begin);
    }
  };
  walk(walk, 0, 0, buf.size());
  if (covered_leaves != nullptr) *covered_leaves = leaves;
}

bool RangesContain(const ZKeyRanges& ranges, uint64_t key) {
  // First range with end > key; key is inside iff that range starts <= key.
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), key,
      [](uint64_t k, const std::pair<uint64_t, uint64_t>& r) {
        return k < r.second;
      });
  return it != ranges.end() && it->first <= key;
}

}  // namespace tq
