// Variable-depth Morton (z-order) identifiers.
//
// The paper assigns hierarchical z-ids like "0.0", "1.2" or "2" to adaptively
// subdivided quadrants of a q-node (§III, Example 3). We encode such a
// quadrant *path* as a left-aligned 64-bit key plus a depth:
//
//   key   = q1 q2 ... qd 00...0   (2 bits per level, most-significant first)
//   depth = d                      (0 = the whole node)
//
// Left-aligned keys give two properties the index relies on:
//   * lexicographic order of paths == integer order of keys, and
//   * a cell at depth d owns the contiguous key range
//     [key, key + 4^(kMaxZDepth - d)), so "trajectory's z-id falls inside a
//     covered cell" becomes a range test over a sorted list (zReduce).
#ifndef TQCOVER_ZORDER_ZID_H_
#define TQCOVER_ZORDER_ZID_H_

#include <cstdint>
#include <string>

#include "geom/point.h"
#include "geom/rect.h"

namespace tq {

/// Maximum subdivision depth. 24 levels × 2 bits = 48 bits of key, enough to
/// resolve ~2.4 mm cells in a 40 km extent.
inline constexpr int kMaxZDepth = 24;

/// A z-order cell identifier (quadrant path) of variable depth.
struct ZId {
  uint64_t key = 0;
  uint8_t depth = 0;

  /// Number of key values owned by this cell.
  uint64_t RangeSize() const {
    return uint64_t{1} << (2 * (kMaxZDepth - depth));
  }
  uint64_t RangeBegin() const { return key; }
  uint64_t RangeEnd() const { return key + RangeSize(); }

  /// True iff this cell (as an ancestor-or-self) contains `other`.
  bool Contains(const ZId& other) const {
    return depth <= other.depth && other.key >= RangeBegin() &&
           other.key < RangeEnd();
  }

  /// Child cell in Morton quadrant order (0=SW, 1=SE, 2=NW, 3=NE).
  ZId Child(int quadrant) const;

  /// Paper-style rendering, e.g. "0.3" for path SW→NE; "ε" for the root.
  std::string ToString() const;

  bool operator==(const ZId& o) const = default;
  auto operator<=>(const ZId& o) const = default;  // (key, depth) order
};

/// Full-depth Morton key of `p` inside `world` (bit-interleaved grid index at
/// kMaxZDepth levels). Used as a total-order tie-break when two trajectories
/// share the same adaptive cell — the paper's "partitioned until the end
/// point of each such trajectory is assigned a different z-id".
uint64_t MortonKey(const Rect& world, const Point& p);

/// The rectangle covered by cell `id` inside `world`.
Rect CellRect(const Rect& world, const ZId& id);

}  // namespace tq

#endif  // TQCOVER_ZORDER_ZID_H_
