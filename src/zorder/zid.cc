#include "zorder/zid.h"

#include <algorithm>

#include "common/check.h"

namespace tq {

ZId ZId::Child(int quadrant) const {
  TQ_DCHECK(depth < kMaxZDepth);
  ZId c;
  c.depth = static_cast<uint8_t>(depth + 1);
  c.key = key | (static_cast<uint64_t>(quadrant & 3)
                 << (2 * (kMaxZDepth - depth - 1)));
  return c;
}

std::string ZId::ToString() const {
  if (depth == 0) return "ε";
  std::string out;
  for (int level = 0; level < depth; ++level) {
    const int q =
        static_cast<int>((key >> (2 * (kMaxZDepth - level - 1))) & 3);
    if (level > 0) out.push_back('.');
    out.push_back(static_cast<char>('0' + q));
  }
  return out;
}

namespace {

// Spreads the low 32 bits of x so there is a zero bit between each.
uint64_t SpreadBits(uint64_t x) {
  x &= 0xFFFFFFFFULL;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t GridCoord(double v, double lo, double extent) {
  if (extent <= 0.0) return 0;
  const double t = (v - lo) / extent;
  const double scaled = t * static_cast<double>(1u << kMaxZDepth);
  const auto max_cell = static_cast<int64_t>((1u << kMaxZDepth) - 1);
  const int64_t cell = std::clamp(static_cast<int64_t>(scaled),
                                  static_cast<int64_t>(0), max_cell);
  return static_cast<uint32_t>(cell);
}

}  // namespace

uint64_t MortonKey(const Rect& world, const Point& p) {
  const uint32_t ix = GridCoord(p.x, world.min_x, world.Width());
  const uint32_t iy = GridCoord(p.y, world.min_y, world.Height());
  // Quadrant numbering: bit0 = x-half, bit1 = y-half, matching
  // Rect::QuadrantOf. The most significant quadrant pair ends up at bit
  // position 2*kMaxZDepth - 2.
  return SpreadBits(ix) | (SpreadBits(iy) << 1);
}

Rect CellRect(const Rect& world, const ZId& id) {
  Rect r = world;
  for (int level = 0; level < id.depth; ++level) {
    const int q =
        static_cast<int>((id.key >> (2 * (kMaxZDepth - level - 1))) & 3);
    r = r.Quadrant(q);
  }
  return r;
}

}  // namespace tq
