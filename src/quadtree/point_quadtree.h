// Classic point quadtree over trajectory points — the "traditional index"
// used by the paper's baseline (BL, §VI): every point of every user
// trajectory is inserted with its (trajectory, point-index) payload, and
// facilities retrieve served points through ψ-disk range queries.
#ifndef TQCOVER_QUADTREE_POINT_QUADTREE_H_
#define TQCOVER_QUADTREE_POINT_QUADTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "traj/dataset.h"

namespace tq {

/// Payload of one indexed point.
struct PointEntry {
  Point p;
  uint32_t traj_id = 0;
  uint32_t point_index = 0;
};

/// Bucket point quadtree with configurable leaf capacity.
class PointQuadtree {
 public:
  explicit PointQuadtree(const Rect& world, size_t leaf_capacity = 64,
                         int max_depth = 24);

  void Insert(const PointEntry& entry);

  /// Inserts every point of every trajectory in `set`.
  void InsertAll(const TrajectorySet& set);

  size_t size() const { return size_; }

  /// Invokes `fn` for every entry within `radius` of `center` (exact
  /// Euclidean test after rectangle pruning).
  void ForEachInDisk(const Point& center, double radius,
                     const std::function<void(const PointEntry&)>& fn) const;

  /// Collects entries within `radius` of `center`.
  std::vector<PointEntry> DiskQuery(const Point& center, double radius) const;

  /// Collects entries inside `range`.
  std::vector<PointEntry> RangeQuery(const Rect& range) const;

 private:
  struct Node {
    Rect rect;
    int32_t first_child = -1;  // children contiguous; -1 = leaf
    std::vector<PointEntry> entries;
    bool IsLeaf() const { return first_child < 0; }
  };

  void InsertInto(int32_t node_index, const PointEntry& entry, int depth);
  void Split(int32_t node_index);

  std::vector<Node> nodes_;
  size_t leaf_capacity_;
  int max_depth_;
  size_t size_ = 0;
};

}  // namespace tq

#endif  // TQCOVER_QUADTREE_POINT_QUADTREE_H_
