#include "quadtree/point_quadtree.h"

#include "common/check.h"

namespace tq {

PointQuadtree::PointQuadtree(const Rect& world, size_t leaf_capacity,
                             int max_depth)
    : leaf_capacity_(leaf_capacity), max_depth_(max_depth) {
  TQ_CHECK(leaf_capacity > 0);
  nodes_.push_back(Node{world, -1, {}});
}

void PointQuadtree::Insert(const PointEntry& entry) {
  InsertInto(0, entry, 0);
  ++size_;
}

void PointQuadtree::InsertAll(const TrajectorySet& set) {
  for (uint32_t id = 0; id < set.size(); ++id) {
    const auto pts = set.points(id);
    for (size_t i = 0; i < pts.size(); ++i) {
      Insert(PointEntry{pts[i], id, static_cast<uint32_t>(i)});
    }
  }
}

void PointQuadtree::InsertInto(int32_t node_index, const PointEntry& entry,
                               int depth) {
  for (;;) {
    Node& n = nodes_[static_cast<size_t>(node_index)];
    if (n.IsLeaf()) {
      if (n.entries.size() < leaf_capacity_ || depth >= max_depth_) {
        n.entries.push_back(entry);
        return;
      }
      Split(node_index);
      continue;  // re-read the node: it is internal now
    }
    node_index = n.first_child + n.rect.QuadrantOf(entry.p);
    ++depth;
  }
}

void PointQuadtree::Split(int32_t node_index) {
  const auto first = static_cast<int32_t>(nodes_.size());
  {
    const Rect rect = nodes_[static_cast<size_t>(node_index)].rect;
    for (int q = 0; q < 4; ++q) {
      nodes_.push_back(Node{rect.Quadrant(q), -1, {}});
    }
  }
  Node& n = nodes_[static_cast<size_t>(node_index)];
  n.first_child = first;
  std::vector<PointEntry> moved;
  moved.swap(n.entries);
  for (const PointEntry& e : moved) {
    const int q = nodes_[static_cast<size_t>(node_index)].rect.QuadrantOf(e.p);
    nodes_[static_cast<size_t>(first + q)].entries.push_back(e);
  }
}

void PointQuadtree::ForEachInDisk(
    const Point& center, double radius,
    const std::function<void(const PointEntry&)>& fn) const {
  const double r2 = radius * radius;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (MinDistance(n.rect, center) > radius) continue;
    if (n.IsLeaf()) {
      for (const PointEntry& e : n.entries) {
        if (DistanceSquared(e.p, center) <= r2) fn(e);
      }
    } else {
      for (int q = 0; q < 4; ++q) stack.push_back(n.first_child + q);
    }
  }
}

std::vector<PointEntry> PointQuadtree::DiskQuery(const Point& center,
                                                 double radius) const {
  std::vector<PointEntry> out;
  ForEachInDisk(center, radius,
                [&out](const PointEntry& e) { out.push_back(e); });
  return out;
}

std::vector<PointEntry> PointQuadtree::RangeQuery(const Rect& range) const {
  std::vector<PointEntry> out;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const int32_t idx = stack.back();
    stack.pop_back();
    const Node& n = nodes_[static_cast<size_t>(idx)];
    if (!n.rect.Intersects(range)) continue;
    if (n.IsLeaf()) {
      for (const PointEntry& e : n.entries) {
        if (range.Contains(e.p)) out.push_back(e);
      }
    } else {
      for (int q = 0; q < 4; ++q) stack.push_back(n.first_child + q);
    }
  }
  return out;
}

}  // namespace tq
