// Deterministic, seedable pseudo-random generator used by all workload
// generators and randomized algorithms. A fixed in-repo implementation
// (splitmix64 + xoshiro256**) keeps benchmark workloads bit-identical across
// standard libraries, which std::mt19937 distributions do not guarantee.
#ifndef TQCOVER_COMMON_RNG_H_
#define TQCOVER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace tq {

/// xoshiro256** seeded via splitmix64. Not cryptographic; fast and
/// reproducible, which is what dataset generation needs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (s=0 is uniform).
  /// Uses a precomputed CDF per (n, s) pair; intended for repeated draws.
  uint64_t NextZipf(uint64_t n, double s);

  /// Integer uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
  // Cached Zipf CDF for the last (n, s) used.
  std::vector<double> zipf_cdf_;
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
};

}  // namespace tq

#endif  // TQCOVER_COMMON_RNG_H_
