#include "common/dynamic_bitset.h"

#include <bit>

#include "common/check.h"

namespace tq {

DynamicBitset::DynamicBitset(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + kBits - 1) / kBits, 0) {}

void DynamicBitset::Set(size_t i) {
  TQ_DCHECK(i < num_bits_);
  words_[i / kBits] |= (uint64_t{1} << (i % kBits));
}

void DynamicBitset::Clear(size_t i) {
  TQ_DCHECK(i < num_bits_);
  words_[i / kBits] &= ~(uint64_t{1} << (i % kBits));
}

bool DynamicBitset::Test(size_t i) const {
  TQ_DCHECK(i < num_bits_);
  return (words_[i / kBits] >> (i % kBits)) & 1;
}

size_t DynamicBitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

bool DynamicBitset::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool DynamicBitset::All() const { return Count() == num_bits_; }

void DynamicBitset::UnionWith(const DynamicBitset& other) {
  TQ_CHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

size_t DynamicBitset::CountNewFrom(const DynamicBitset& other) const {
  TQ_CHECK(num_bits_ == other.num_bits_);
  size_t n = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<size_t>(std::popcount(other.words_[i] & ~words_[i]));
  }
  return n;
}

void DynamicBitset::Reset() {
  for (auto& w : words_) w = 0;
}

}  // namespace tq
