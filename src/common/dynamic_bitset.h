// Compact dynamic bitset used for per-user served-point/segment masks in the
// MaxkCovRST coverage state. std::vector<bool> is avoided for its proxy
// iterator pitfalls; this type also provides the popcount/union operations the
// coverage algebra needs.
#ifndef TQCOVER_COMMON_DYNAMIC_BITSET_H_
#define TQCOVER_COMMON_DYNAMIC_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tq {

/// Fixed-size-after-construction bitset with word-level set algebra.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t num_bits);

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// Number of set bits.
  size_t Count() const;

  /// True if no bit is set.
  bool None() const;

  /// True if every bit is set.
  bool All() const;

  /// this |= other. Sizes must match.
  void UnionWith(const DynamicBitset& other);

  /// Number of bits that would become set by UnionWith(other) but are not
  /// currently set: |other \ this|. Sizes must match.
  size_t CountNewFrom(const DynamicBitset& other) const;

  /// Resets all bits to zero.
  void Reset();

  /// Raw word storage: ceil(size()/64) little-endian-bit-order words. Writers
  /// own the invariant that bits at and beyond size() stay zero (Count(),
  /// None() and operator== popcount/compare whole words).
  size_t NumWords() const { return words_.size(); }
  uint64_t* WordData() { return words_.data(); }
  const uint64_t* WordData() const { return words_.data(); }

  bool operator==(const DynamicBitset& other) const = default;

 private:
  static constexpr size_t kBits = 64;
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace tq

#endif  // TQCOVER_COMMON_DYNAMIC_BITSET_H_
