// CRC32C (Castagnoli) — the frame checksum of the durability layer.
//
// Every WAL record and every snapshot page record carries a CRC32C over its
// payload, so replay can tell a torn tail (partial final write, expected
// after SIGKILL) from mid-stream corruption (a damaged disk, which must be
// an error, never silently skipped). Software table-driven implementation:
// no ISA dependency, ~1 GB/s — far above what the WAL append path needs.
#ifndef TQCOVER_COMMON_CRC32C_H_
#define TQCOVER_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tq {

/// Extends a running CRC32C with `n` bytes. Start from 0 for a fresh sum.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32C of a buffer.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}
inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace tq

#endif  // TQCOVER_COMMON_CRC32C_H_
