// Internal invariant checking macros (Google style: crash on programmer error,
// never on user input — user input goes through Status).
#ifndef TQCOVER_COMMON_CHECK_H_
#define TQCOVER_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when an internal invariant is violated. Enabled in
/// all build types: invariant violations in index code corrupt query results
/// silently, which is worse than a crash.
#define TQ_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TQ_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define TQ_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "TQ_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Cheap checks compiled out of release-with-assertions-off builds.
#ifndef NDEBUG
#define TQ_DCHECK(cond) TQ_CHECK(cond)
#else
#define TQ_DCHECK(cond) \
  do {                  \
  } while (0)
#endif

#endif  // TQCOVER_COMMON_CHECK_H_
