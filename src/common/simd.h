// Portable SIMD layer for the exact service-value kernels.
//
// Two implementations of the same 4-wide f64 geometry primitives, both
// compiled into every binary:
//
//   * the *active* path (`tq::simd`) — GNU vector extensions on GCC/Clang,
//     which lower to SSE2 pairs on baseline x86-64 and to single 256-bit AVX
//     ops under -march=x86-64-v3; a pure-scalar loop otherwise, or when the
//     build pins -DTQ_SIMD_FORCE_SCALAR (CMake -DTQ_SIMD=scalar). Selection
//     is entirely compile-time: no runtime dispatch on the hot path.
//   * the *reference* path (`tq::simd::scalar`) — plain scalar loops with the
//     exact same per-lane expressions, always available so the agreement
//     suite (tests/test_simd_kernels.cc) can compare vectorized and scalar
//     results bit-for-bit within one binary.
//
// Bit-identity is by construction, not by tolerance: every lane performs the
// same IEEE-754 double operations, in the same expression shape, as the
// scalar reference. The build pins -ffp-contract=off (CMakeLists.txt) so a
// compiler with FMA available (the x86-64-v3 CI cell) cannot contract
// `dx*dx + dy*dy` differently in one path than the other. Kernels therefore
// vectorize only *predicates* and *lane-independent arithmetic* — never
// reductions whose accumulation order the evaluator's answers depend on.
#ifndef TQCOVER_COMMON_SIMD_H_
#define TQCOVER_COMMON_SIMD_H_

#include <cstdint>
#include <cstring>

#if !defined(TQ_SIMD_FORCE_SCALAR) && (defined(__GNUC__) || defined(__clang__))
#define TQ_SIMD_VECTOR_EXT 1
#else
#define TQ_SIMD_VECTOR_EXT 0
#endif

namespace tq::simd {

/// Lane count of the wide f64 type. The kernels are written against 4 lanes;
/// on AVX2 that is one 256-bit register, on SSE2 two 128-bit ones.
inline constexpr size_t kLanes = 4;

#if TQ_SIMD_VECTOR_EXT

typedef double F64x4 __attribute__((vector_size(32), aligned(8)));
typedef int64_t Mask64x4 __attribute__((vector_size(32), aligned(8)));

inline F64x4 Broadcast(double v) { return F64x4{v, v, v, v}; }
inline F64x4 Load(const double* p) {
  F64x4 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
/// Gathers the x (or y) coordinates of 4 array-of-structs points laid out
/// with stride 2 doubles (struct Point).
inline F64x4 GatherStride2(const double* p) {
  return F64x4{p[0], p[2], p[4], p[6]};
}
inline F64x4 Add(F64x4 a, F64x4 b) { return a + b; }
inline F64x4 Sub(F64x4 a, F64x4 b) { return a - b; }
inline F64x4 Mul(F64x4 a, F64x4 b) { return a * b; }
/// Lanewise max. `a > b ? a : b` — for the kernels' clamp-to-zero uses the
/// NaN/-0.0 corner behaviour matches the scalar reference's ternary exactly.
inline F64x4 Max(F64x4 a, F64x4 b) { return a > b ? a : b; }
/// Bit i of the result is set iff lane i satisfies a <= b.
inline uint32_t LaneMaskLe(F64x4 a, F64x4 b) {
  const Mask64x4 m = a <= b;
  return static_cast<uint32_t>((m[0] & 1) | (m[1] & 2) | (m[2] & 4) |
                               (m[3] & 8));
}
/// Bit i set iff lane i satisfies lo <= v && v <= hi (closed interval).
inline uint32_t LaneMaskInRange(F64x4 v, F64x4 lo, F64x4 hi) {
  const Mask64x4 m = (lo <= v) & (v <= hi);
  return static_cast<uint32_t>((m[0] & 1) | (m[1] & 2) | (m[2] & 4) |
                               (m[3] & 8));
}

#else  // pure-scalar fallback with the identical API

struct F64x4 {
  double v[4];
};

inline F64x4 Broadcast(double x) { return F64x4{{x, x, x, x}}; }
inline F64x4 Load(const double* p) { return F64x4{{p[0], p[1], p[2], p[3]}}; }
inline F64x4 GatherStride2(const double* p) {
  return F64x4{{p[0], p[2], p[4], p[6]}};
}
inline F64x4 Add(F64x4 a, F64x4 b) {
  return F64x4{{a.v[0] + b.v[0], a.v[1] + b.v[1], a.v[2] + b.v[2],
                a.v[3] + b.v[3]}};
}
inline F64x4 Sub(F64x4 a, F64x4 b) {
  return F64x4{{a.v[0] - b.v[0], a.v[1] - b.v[1], a.v[2] - b.v[2],
                a.v[3] - b.v[3]}};
}
inline F64x4 Mul(F64x4 a, F64x4 b) {
  return F64x4{{a.v[0] * b.v[0], a.v[1] * b.v[1], a.v[2] * b.v[2],
                a.v[3] * b.v[3]}};
}
inline F64x4 Max(F64x4 a, F64x4 b) {
  F64x4 r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
  return r;
}
inline uint32_t LaneMaskLe(F64x4 a, F64x4 b) {
  uint32_t m = 0;
  for (int i = 0; i < 4; ++i) m |= (a.v[i] <= b.v[i] ? 1u : 0u) << i;
  return m;
}
inline uint32_t LaneMaskInRange(F64x4 v, F64x4 lo, F64x4 hi) {
  uint32_t m = 0;
  for (int i = 0; i < 4; ++i) {
    m |= ((lo.v[i] <= v.v[i] && v.v[i] <= hi.v[i]) ? 1u : 0u) << i;
  }
  return m;
}

#endif  // TQ_SIMD_VECTOR_EXT

// ------------------------------------------------------------------ kernels
// The three predicate kernels the service-value hot paths decompose into.
// Each has a scalar reference twin in tq::simd::scalar below; the agreement
// suite asserts lane-for-lane equality between the two.

/// Lanes whose squared distance from (px, py) to (xs[i], ys[i]) is <= psi2.
/// Expression shape matches Point DistanceSquared: dx*dx + dy*dy.
inline uint32_t LanesWithinPsi2(const double* xs, const double* ys, double px,
                                double py, double psi2) {
  const F64x4 dx = Sub(Broadcast(px), Load(xs));
  const F64x4 dy = Sub(Broadcast(py), Load(ys));
  const F64x4 d2 = Add(Mul(dx, dx), Mul(dy, dy));
  return LaneMaskLe(d2, Broadcast(psi2));
}

/// Lanes of 4 consecutive AoS points (stride-2 doubles at `pts`) inside the
/// closed rectangle [min_x, max_x] x [min_y, max_y].
inline uint32_t LanesInRect(const double* pts, double min_x, double min_y,
                            double max_x, double max_y) {
  const F64x4 xs = GatherStride2(pts);
  const F64x4 ys = GatherStride2(pts + 1);
  return LaneMaskInRange(xs, Broadcast(min_x), Broadcast(max_x)) &
         LaneMaskInRange(ys, Broadcast(min_y), Broadcast(max_y));
}

/// Lanes of 4 consecutive AoS points whose squared min-distance to the
/// rectangle is <= psi2 — the reachability predicate of the bound sweep
/// (ψ-disk of the point intersects the rectangle, in squared form).
inline uint32_t LanesDiskReachRect(const double* pts, double min_x,
                                   double min_y, double max_x, double max_y,
                                   double psi2) {
  const F64x4 xs = GatherStride2(pts);
  const F64x4 ys = GatherStride2(pts + 1);
  const F64x4 zero = Broadcast(0.0);
  const F64x4 dx = Max(Max(Sub(Broadcast(min_x), xs), Sub(xs, Broadcast(max_x))), zero);
  const F64x4 dy = Max(Max(Sub(Broadcast(min_y), ys), Sub(ys, Broadcast(max_y))), zero);
  const F64x4 d2 = Add(Mul(dx, dx), Mul(dy, dy));
  return LaneMaskLe(d2, Broadcast(psi2));
}

namespace scalar {

// The retained scalar references: same expressions, one lane at a time.
// These are the ground truth the vector kernels must agree with bit-for-bit
// (and the implementation the TQ_SIMD=scalar build effectively runs).

inline bool WithinPsi2(double sx, double sy, double px, double py,
                       double psi2) {
  const double dx = px - sx;
  const double dy = py - sy;
  return dx * dx + dy * dy <= psi2;
}

inline uint32_t LanesWithinPsi2(const double* xs, const double* ys, double px,
                                double py, double psi2) {
  uint32_t m = 0;
  for (int i = 0; i < 4; ++i) {
    m |= (WithinPsi2(xs[i], ys[i], px, py, psi2) ? 1u : 0u) << i;
  }
  return m;
}

inline bool InRect(double x, double y, double min_x, double min_y,
                   double max_x, double max_y) {
  return x >= min_x && x <= max_x && y >= min_y && y <= max_y;
}

inline uint32_t LanesInRect(const double* pts, double min_x, double min_y,
                            double max_x, double max_y) {
  uint32_t m = 0;
  for (int i = 0; i < 4; ++i) {
    m |= (InRect(pts[2 * i], pts[2 * i + 1], min_x, min_y, max_x, max_y)
              ? 1u
              : 0u)
         << i;
  }
  return m;
}

inline bool DiskReachRect(double x, double y, double min_x, double min_y,
                          double max_x, double max_y, double psi2) {
  const double cx1 = min_x - x;
  const double cx2 = x - max_x;
  const double dx0 = cx1 > cx2 ? cx1 : cx2;
  const double dx = dx0 > 0.0 ? dx0 : 0.0;
  const double cy1 = min_y - y;
  const double cy2 = y - max_y;
  const double dy0 = cy1 > cy2 ? cy1 : cy2;
  const double dy = dy0 > 0.0 ? dy0 : 0.0;
  return dx * dx + dy * dy <= psi2;
}

inline uint32_t LanesDiskReachRect(const double* pts, double min_x,
                                   double min_y, double max_x, double max_y,
                                   double psi2) {
  uint32_t m = 0;
  for (int i = 0; i < 4; ++i) {
    m |= (DiskReachRect(pts[2 * i], pts[2 * i + 1], min_x, min_y, max_x,
                        max_y, psi2)
              ? 1u
              : 0u)
         << i;
  }
  return m;
}

}  // namespace scalar

}  // namespace tq::simd

#endif  // TQCOVER_COMMON_SIMD_H_
