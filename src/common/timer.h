// Wall-clock stopwatch used by the benchmark harnesses.
#ifndef TQCOVER_COMMON_TIMER_H_
#define TQCOVER_COMMON_TIMER_H_

#include <chrono>

namespace tq {

/// Monotonic stopwatch. Construction starts the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tq

#endif  // TQCOVER_COMMON_TIMER_H_
