#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace tq {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  TQ_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  TQ_CHECK(n > 0);
  if (zipf_n_ != n || zipf_s_ != s) {
    zipf_cdf_.resize(n);
    double acc = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = acc;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= acc;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  const double u = NextDouble();
  // Binary search for the first CDF entry >= u.
  size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (zipf_cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TQ_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

}  // namespace tq
