// Minimal Status/Result error-handling vocabulary, after the Arrow/RocksDB
// idiom: library code never throws; fallible operations return Status or
// Result<T>.
#ifndef TQCOVER_COMMON_STATUS_H_
#define TQCOVER_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace tq {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  /// Partial or degraded result: the answer was computed from fewer
  /// participants than configured (a dead shard worker, say). The value
  /// carried alongside is the best available, not the full one.
  kUnavailable,
  /// Load shed: the server refused the work because its global queued-work
  /// admission limit was exceeded. Retrying later (with backoff) is the
  /// correct client reaction — nothing about the request itself was wrong.
  kOverloaded,
};

/// Value-semantic status object. `Status::OK()` is cheap (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IOError: no such file".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Mirrors arrow::Result<T>.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    TQ_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Crashes if `!ok()` — call sites must check first (or use ValueOrDie
  /// deliberately in tests/benches where the input is known-good).
  T& ValueOrDie() {
    TQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  const T& ValueOrDie() const {
    TQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }

  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK status to the caller.
#define TQ_RETURN_NOT_OK(expr)            \
  do {                                    \
    ::tq::Status _st = (expr);            \
    if (!_st.ok()) return _st;            \
  } while (0)

}  // namespace tq

#endif  // TQCOVER_COMMON_STATUS_H_
