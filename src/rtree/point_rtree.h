// STR bulk-loaded R-tree over trajectory points.
//
// The paper's related work (§VII: Tang et al., Han et al., Shang et al.)
// stores trajectory points in R-tree variants; this substrate provides that
// alternative "traditional index" so the baseline can be run against either
// index family (bench_ablation_indexes) and so downstream users get a
// packed, read-optimised structure when updates are not needed.
#ifndef TQCOVER_RTREE_POINT_RTREE_H_
#define TQCOVER_RTREE_POINT_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "quadtree/point_quadtree.h"  // PointEntry
#include "traj/dataset.h"

namespace tq {

/// Immutable R-tree built once with Sort-Tile-Recursive packing. Leaves hold
/// up to `leaf_capacity` entries; internal nodes up to `fanout` children.
class PointRTree {
 public:
  explicit PointRTree(std::vector<PointEntry> entries,
                      size_t leaf_capacity = 64, size_t fanout = 16);

  /// Builds over every point of every trajectory in `set`.
  static PointRTree FromTrajectories(const TrajectorySet& set,
                                     size_t leaf_capacity = 64,
                                     size_t fanout = 16);

  size_t size() const { return entries_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  int height() const { return height_; }
  const Rect& bounds() const;

  /// Invokes `fn` for every entry within `radius` of `center`.
  void ForEachInDisk(const Point& center, double radius,
                     const std::function<void(const PointEntry&)>& fn) const;

  /// Entries inside `range` (closed rectangle).
  std::vector<PointEntry> RangeQuery(const Rect& range) const;

  /// Entries within `radius` of `center`.
  std::vector<PointEntry> DiskQuery(const Point& center, double radius) const;

 private:
  struct Node {
    Rect mbr = Rect::Empty();
    // Leaf: [begin, end) into entries_. Internal: [begin, end) into nodes_
    // (children are contiguous).
    uint32_t begin = 0;
    uint32_t end = 0;
    bool leaf = true;
  };

  /// STR-packs `count` items with the given capacity; returns group ranges.
  static std::vector<std::pair<uint32_t, uint32_t>> Slabs(size_t count,
                                                          size_t capacity);

  std::vector<PointEntry> entries_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  int height_ = 0;
};

}  // namespace tq

#endif  // TQCOVER_RTREE_POINT_RTREE_H_
