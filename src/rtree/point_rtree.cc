#include "rtree/point_rtree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tq {

std::vector<std::pair<uint32_t, uint32_t>> PointRTree::Slabs(
    size_t count, size_t capacity) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  for (size_t begin = 0; begin < count; begin += capacity) {
    out.emplace_back(static_cast<uint32_t>(begin),
                     static_cast<uint32_t>(std::min(begin + capacity,
                                                    count)));
  }
  return out;
}

PointRTree::PointRTree(std::vector<PointEntry> entries, size_t leaf_capacity,
                       size_t fanout)
    : entries_(std::move(entries)) {
  TQ_CHECK(leaf_capacity > 0 && fanout > 1);
  if (entries_.empty()) {
    nodes_.push_back(Node{Rect::Empty(), 0, 0, true});
    root_ = 0;
    height_ = 1;
    return;
  }

  // STR leaf packing: sort by x; cut into √(n/c) vertical slices; sort each
  // slice by y; chunk into leaves of ≤ leaf_capacity.
  const size_t n = entries_.size();
  const auto num_leaves =
      static_cast<size_t>(std::ceil(static_cast<double>(n) /
                                    static_cast<double>(leaf_capacity)));
  const auto slices = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slice_size =
      (n + slices - 1) / slices;

  std::sort(entries_.begin(), entries_.end(),
            [](const PointEntry& a, const PointEntry& b) {
              return a.p.x < b.p.x;
            });
  for (size_t begin = 0; begin < n; begin += slice_size) {
    const size_t end = std::min(begin + slice_size, n);
    std::sort(entries_.begin() + static_cast<std::ptrdiff_t>(begin),
              entries_.begin() + static_cast<std::ptrdiff_t>(end),
              [](const PointEntry& a, const PointEntry& b) {
                return a.p.y < b.p.y;
              });
  }

  // Leaves.
  std::vector<int32_t> level;
  for (size_t begin = 0; begin < n; begin += leaf_capacity) {
    const size_t end = std::min(begin + leaf_capacity, n);
    Node leaf;
    leaf.leaf = true;
    leaf.begin = static_cast<uint32_t>(begin);
    leaf.end = static_cast<uint32_t>(end);
    for (size_t i = begin; i < end; ++i) leaf.mbr.Include(entries_[i].p);
    level.push_back(static_cast<int32_t>(nodes_.size()));
    nodes_.push_back(leaf);
  }
  height_ = 1;

  // Pack upward until a single root remains. Children of one parent are
  // contiguous in nodes_ because each level is appended in order.
  while (level.size() > 1) {
    std::vector<int32_t> parents;
    for (const auto& [begin, end] : Slabs(level.size(), fanout)) {
      Node parent;
      parent.leaf = false;
      parent.begin = static_cast<uint32_t>(level[begin]);
      parent.end = static_cast<uint32_t>(level[end - 1] + 1);
      for (uint32_t c = begin; c < end; ++c) {
        parent.mbr = parent.mbr.UnionWith(
            nodes_[static_cast<size_t>(level[c])].mbr);
      }
      parents.push_back(static_cast<int32_t>(nodes_.size()));
      nodes_.push_back(parent);
    }
    level = std::move(parents);
    ++height_;
  }
  root_ = level.front();
}

PointRTree PointRTree::FromTrajectories(const TrajectorySet& set,
                                        size_t leaf_capacity, size_t fanout) {
  std::vector<PointEntry> entries;
  entries.reserve(set.TotalPoints());
  for (uint32_t id = 0; id < set.size(); ++id) {
    const auto pts = set.points(id);
    for (size_t i = 0; i < pts.size(); ++i) {
      entries.push_back(PointEntry{pts[i], id, static_cast<uint32_t>(i)});
    }
  }
  return PointRTree(std::move(entries), leaf_capacity, fanout);
}

const Rect& PointRTree::bounds() const {
  return nodes_[static_cast<size_t>(root_)].mbr;
}

void PointRTree::ForEachInDisk(
    const Point& center, double radius,
    const std::function<void(const PointEntry&)>& fn) const {
  if (entries_.empty()) return;
  const double r2 = radius * radius;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (MinDistance(n.mbr, center) > radius) continue;
    if (n.leaf) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        if (DistanceSquared(entries_[i].p, center) <= r2) fn(entries_[i]);
      }
    } else {
      for (uint32_t c = n.begin; c < n.end; ++c) {
        stack.push_back(static_cast<int32_t>(c));
      }
    }
  }
}

std::vector<PointEntry> PointRTree::RangeQuery(const Rect& range) const {
  std::vector<PointEntry> out;
  if (entries_.empty()) return out;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& n = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (!n.mbr.Intersects(range)) continue;
    if (n.leaf) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        if (range.Contains(entries_[i].p)) out.push_back(entries_[i]);
      }
    } else {
      for (uint32_t c = n.begin; c < n.end; ++c) {
        stack.push_back(static_cast<int32_t>(c));
      }
    }
  }
  return out;
}

std::vector<PointEntry> PointRTree::DiskQuery(const Point& center,
                                              double radius) const {
  std::vector<PointEntry> out;
  ForEachInDisk(center, radius,
                [&out](const PointEntry& e) { out.push_back(e); });
  return out;
}

}  // namespace tq
