// §VI-B.1(iii): distance threshold ψ sweep (the paper varied ψ, observed no
// significant change for the TQ-tree approaches, and omitted the graph; we
// print it).
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  std::printf("psi sweep: single-facility service value (scale=%.3f)\n",
              env.scale);
  Banner("time vs psi (m), NYT default workload");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  double sink = 0.0;
  for (const double psi : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    const ServiceModel model = ServiceModel::Endpoints(psi);
    Workload w = BuildWorkload(presets::NytTrips(env.DefaultUsers()),
                               presets::NyBusRoutes(16, env.DefaultStops()),
                               model, env.DefaultBeta());
    const size_t nf = w.catalog->size();
    const double bl = TimeAvgSeconds(env.reps, [&] {
                        for (uint32_t f = 0; f < nf; ++f) {
                          sink += EvaluateServiceBaseline(
                              *w.bl_index, *w.eval, w.catalog->grid(f));
                        }
                      }) /
                      static_cast<double>(nf);
    const double tb = TimeAvgSeconds(env.reps, [&] {
                        for (uint32_t f = 0; f < nf; ++f) {
                          sink += EvaluateServiceTQ(w.tq_basic.get(), *w.eval,
                                                    w.catalog->grid(f));
                        }
                      }) /
                      static_cast<double>(nf);
    const double tz = TimeAvgSeconds(env.reps, [&] {
                        for (uint32_t f = 0; f < nf; ++f) {
                          sink += EvaluateServiceTQ(w.tq_z.get(), *w.eval,
                                                    w.catalog->grid(f));
                        }
                      }) /
                      static_cast<double>(nf);
    char label[32];
    std::snprintf(label, sizeof(label), "psi=%.0f", psi);
    PrintTimeRow(label, {"BL", "TQ_B", "TQ_Z"}, {bl, tb, tz});
  }
  if (sink < 0) std::printf("impossible\n");
  return 0;
}
