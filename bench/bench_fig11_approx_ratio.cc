// Figure 11: approximation ratio of G-TQ(Z) and Gn-TQ(Z) against the exact
// MaxkCovRST solution, (a) vs #users, (b) vs #facilities.
//
// The exact solver enumerates C(pool, k) combinations; following the paper's
// reduced instances, the pool is capped at the top `kExactPool` facilities
// by single-facility service (printed with the row so the restriction is
// explicit).
#include <cstdio>

#include "bench_util.h"
#include "cover/exact.h"
#include "cover/genetic.h"
#include "cover/greedy.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

namespace {

constexpr size_t kExactPool = 20;

void MeasureRow(Workload* w, size_t k, const std::string& label) {
  // Pool: top facilities by SO, served sets collected once.
  const size_t pool_size = std::min(kExactPool, w->catalog->size());
  const TopKResult pool =
      TopKFacilitiesTQ(w->tq_z.get(), *w->catalog, *w->eval, pool_size);
  std::vector<FacilityServedSet> sets;
  for (const RankedFacility& rf : pool.ranked) {
    sets.push_back(
        CollectServedSetTQ(w->tq_z.get(), *w->catalog, *w->eval, rf.id));
  }
  const ExactCoverResult exact = ExactCover(sets, k, *w->eval);
  const CoverResult greedy = GreedyCover(sets, k, *w->eval);
  // Genetic over the same pool for a like-for-like ratio.
  ServedSetCache cache(w->tq_z.get(), w->catalog.get(), w->eval.get());
  GeneticOptions gopt;
  const CoverResult genetic =
      GeneticCover(&cache, w->catalog->size(), k, *w->eval, gopt);
  const double g_ratio = exact.total > 0 ? greedy.total / exact.total : 1.0;
  const double n_ratio = exact.total > 0 ? genetic.total / exact.total : 1.0;
  std::printf("%-14s %12.4f %12.4f   (exact=%.0f over top-%zu pool)\n",
              label.c_str(), g_ratio, n_ratio, exact.total, pool_size);
  std::printf("# csv:%s,G_TQ_Z=%.6f,Gn_TQ_Z=%.6f\n", label.c_str(), g_ratio,
              n_ratio);
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  const size_t k = 4;
  std::printf("Figure 11: MaxkCovRST approximation ratio (k=%zu)\n", k);

  Banner("Fig 11(a): ratio vs #user trajectories");
  PrintSeriesHeader({"G_TQ_Z", "Gn_TQ_Z"});
  {
    const std::vector<const char*> day_labels = {"0.5d", "1d", "2d", "3d"};
    const std::vector<size_t> sweep = presets::NytUserSweep(env.scale);
    for (size_t i = 0; i < sweep.size(); ++i) {
      Workload w = BuildWorkload(
          presets::NytTrips(sweep[i]), presets::NyBusRoutes(32, 32), model,
          env.DefaultBeta(), TrajMode::kWhole, BuildWhat::kZOrder);
      MeasureRow(&w, k, day_labels[i]);
    }
  }

  Banner("Fig 11(b): ratio vs #facilities");
  PrintSeriesHeader({"G_TQ_Z", "Gn_TQ_Z"});
  for (const size_t nf : {16u, 32u, 64u}) {
    Workload w = BuildWorkload(presets::NytTrips(env.DefaultUsers()),
                               presets::NyBusRoutes(nf, 32), model,
                               env.DefaultBeta(), TrajMode::kWhole,
                               BuildWhat::kZOrder);
    MeasureRow(&w, k, "N=" + std::to_string(nf));
  }
  return 0;
}
