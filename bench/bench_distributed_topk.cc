// Distributed top-k latency: the RemoteShardSet coordinator over loopback
// shard-worker processes versus the single-process ShardedEngine, on the
// NYF preset, for the acceptance matrix shards {2, 4} × workers {1, 2}.
//
// Each "worker process" here is an in-process slice-owning ShardedEngine
// behind its own NetServer on an ephemeral loopback port — the same code a
// real `tqcover_cli serve --worker` runs, minus fork/exec, so the measured
// delta is the coordination cost (wire framing + two-round bound-and-prune
// over TCP + merge) rather than process-spawn noise. Queries run as
// synchronous round-trips through SubmitAsync, one in flight at a time:
// the series is a LATENCY comparison, with rps = 1 / mean latency.
//
// Per cell:
//   * rps / p50_ms / p99_ms            — coordinator top-k round-trips
//   * single_rps / single_p50_ms       — same queries on one process
//   * sum_rps                          — coordinator scatter/gather sums
//   * slowdown                         — single_rps / rps (coordination tax)
//
// Emits "# json: distributed_topk"; CI gates on every cell's rps staying
// positive so the distributed path cannot silently stop answering.
// Honors REPRO_SCALE / REPRO_FULL (bench_util.h).
#include <algorithm>
#include <cstdio>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "net/server.h"
#include "runtime/remote_shard_set.h"
#include "runtime/sharded_engine.h"

namespace {

using tq::net::NetServer;
using tq::net::NetServerOptions;
using tq::runtime::QueryRequest;
using tq::runtime::QueryResponse;
using tq::runtime::RemoteShardSet;
using tq::runtime::RemoteShardSetOptions;
using tq::runtime::ServingEngine;
using tq::runtime::ShardedEngine;
using tq::runtime::ShardedEngineOptions;

struct Cell {
  size_t shards = 0;
  size_t workers = 0;
  size_t queries = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double single_rps = 0.0;
  double single_p50_ms = 0.0;
  double sum_rps = 0.0;
  double slowdown = 0.0;
};

/// One in-process shard-worker: slice-owning engine + TCP front-end.
struct Worker {
  std::unique_ptr<ShardedEngine> engine;
  std::unique_ptr<NetServer> server;
};

QueryResponse RunQuery(ServingEngine& engine, QueryRequest request) {
  std::promise<QueryResponse> promise;
  std::future<QueryResponse> future = promise.get_future();
  engine.SubmitAsync(
      std::move(request), nullptr,
      [&promise](QueryResponse r) { promise.set_value(std::move(r)); },
      /*start_ns=*/0);
  return future.get();
}

}  // namespace

int main() {
  const auto env = tq::bench::BenchEnv::FromEnv();
  const auto num_users = static_cast<size_t>(212751 * env.scale);
  const tq::TrajectorySet users = tq::presets::NyfCheckins(num_users);
  const tq::TrajectorySet routes =
      tq::presets::NyBusRoutes(env.DefaultFacilities(), env.DefaultStops());
  const size_t num_fac = routes.size();
  const size_t reps = std::max<size_t>(env.reps, 3);
  // Cycle k through small-to-broad requests so both the pruned and the
  // exhaustive protocol legs get exercised.
  const std::vector<size_t> ks = {1, 4, 8, 16};
  const size_t queries = reps * 16;

  tq::bench::Banner("Distributed top-k — coordinator vs single process");
  std::printf("users=%zu facilities=%zu queries/cell=%zu\n", num_users,
              num_fac, queries);
  tq::bench::PrintSeriesHeader(
      {"rps", "p50_ms", "p99_ms", "single_rps", "sum_rps", "slowdown"});

  std::vector<Cell> cells;
  for (const size_t shards : {2u, 4u}) {
    ShardedEngineOptions base;
    base.num_shards = shards;
    base.num_threads = 2;
    // Result caches off everywhere: the series compares the two-round wire
    // protocol against the in-process protocol, both computing answers from
    // the trees every time — not hash-map hit rates.
    base.cache_capacity = 0;
    base.tree.beta = env.DefaultBeta();
    base.tree.model = tq::ServiceModel::PointCount(env.DefaultPsi());

    // The single-process reference for this shard count.
    ShardedEngine single(users, routes, base);

    for (const size_t num_workers : {1u, 2u}) {
      Cell cell;
      cell.shards = shards;
      cell.workers = num_workers;
      cell.queries = queries;

      // Stand up the worker fleet: contiguous even slices of the shard
      // range, the last worker taking the remainder.
      std::vector<Worker> workers;
      const auto per = static_cast<uint32_t>(shards / num_workers);
      for (size_t i = 0; i < num_workers; ++i) {
        ShardedEngineOptions so = base;
        so.owned_begin = static_cast<uint32_t>(i) * per;
        so.owned_end = i + 1 == num_workers ? static_cast<uint32_t>(shards)
                                            : so.owned_begin + per;
        Worker w;
        w.engine = std::make_unique<ShardedEngine>(users, routes, so);
        w.server =
            std::make_unique<NetServer>(w.engine.get(), NetServerOptions{});
        TQ_CHECK(w.server->Start().ok());
        workers.push_back(std::move(w));
      }
      RemoteShardSetOptions ro;
      for (const Worker& w : workers) {
        ro.workers.emplace_back("127.0.0.1", w.server->port());
      }
      ro.num_threads = 2;
      RemoteShardSet coord(ro);
      TQ_CHECK(coord.Connect().ok());

      // Warm both paths once (first-touch page faults, cold caches).
      TQ_CHECK(RunQuery(coord, QueryRequest::TopK(8)).status.ok());
      TQ_CHECK(RunQuery(single, QueryRequest::TopK(8)).status.ok());

      tq::bench::LatencyRecorder dist_lat;
      {
        tq::Timer timer;
        for (size_t i = 0; i < queries; ++i) {
          tq::Timer rt;
          const QueryResponse r =
              RunQuery(coord, QueryRequest::TopK(ks[i % ks.size()]));
          dist_lat.RecordSeconds(rt.ElapsedSeconds());
          TQ_CHECK(r.status.ok() && !r.ranked.empty());
        }
        cell.rps = static_cast<double>(queries) / timer.ElapsedSeconds();
      }
      const auto dl = dist_lat.Snapshot();
      cell.p50_ms = tq::bench::PercentileMs(dl, 0.50);
      cell.p99_ms = tq::bench::PercentileMs(dl, 0.99);

      tq::bench::LatencyRecorder single_lat;
      {
        tq::Timer timer;
        for (size_t i = 0; i < queries; ++i) {
          tq::Timer rt;
          const QueryResponse r =
              RunQuery(single, QueryRequest::TopK(ks[i % ks.size()]));
          single_lat.RecordSeconds(rt.ElapsedSeconds());
          TQ_CHECK(r.status.ok() && !r.ranked.empty());
        }
        cell.single_rps =
            static_cast<double>(queries) / timer.ElapsedSeconds();
      }
      cell.single_p50_ms =
          tq::bench::PercentileMs(single_lat.Snapshot(), 0.50);
      cell.slowdown = cell.rps > 0.0 ? cell.single_rps / cell.rps : 0.0;

      // Scatter/gather service-value sums (cache-missing: stride the
      // catalog so consecutive queries hit distinct facilities).
      {
        tq::Timer timer;
        for (size_t i = 0; i < queries; ++i) {
          const auto f = static_cast<tq::FacilityId>((i * 7) % num_fac);
          TQ_CHECK(
              RunQuery(coord, QueryRequest::ServiceValue(f)).status.ok());
        }
        cell.sum_rps = static_cast<double>(queries) / timer.ElapsedSeconds();
      }

      cells.push_back(cell);
      char label[48];
      std::snprintf(label, sizeof(label), "shards=%zu,workers=%zu", shards,
                    num_workers);
      tq::bench::PrintTimeRow(
          label,
          {"rps", "p50_ms", "p99_ms", "single_rps", "sum_rps", "slowdown"},
          {cell.rps, cell.p50_ms, cell.p99_ms, cell.single_rps, cell.sum_rps,
           cell.slowdown});
      for (Worker& w : workers) w.server->Stop();
    }
  }

  std::printf("# json: {\"bench\":\"distributed_topk\",\"preset\":\"nyf\","
              "\"users\":%zu,\"facilities\":%zu,\"results\":[",
              num_users, num_fac);
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::printf(
        "%s{\"shards\":%zu,\"workers\":%zu,\"queries\":%zu,"
        "\"requests_per_sec\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"single_requests_per_sec\":%.1f,\"single_p50_ms\":%.3f,"
        "\"sum_requests_per_sec\":%.1f,\"slowdown\":%.2f}",
        i == 0 ? "" : ",", c.shards, c.workers, c.queries, c.rps, c.p50_ms,
        c.p99_ms, c.single_rps, c.single_p50_ms, c.sum_rps, c.slowdown);
  }
  std::printf("]}\n");
  return 0;
}
