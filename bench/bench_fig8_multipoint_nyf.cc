// Figure 8: kMaxRRST on the multipoint NYF (Foursquare-like) dataset.
//   (a) vs #stops; (b) vs #facilities.
// Series: S-BL, S-TQ(B), S-TQ(Z) (segmented index) and F-BL(=same baseline),
// F-TQ(B), F-TQ(Z) (full-trajectory index). The baseline is identical in
// both framings; it is printed once per group like the paper's figure.
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

namespace {

struct MultiWorkload {
  Workload segmented;  // S-TQ(B)/S-TQ(Z) + BL
  Workload full;       // F-TQ(B)/F-TQ(Z)
};

MultiWorkload Build(const BenchEnv& env, size_t num_users, size_t routes,
                    size_t stops) {
  const ServiceModel model = ServiceModel::PointCount(env.DefaultPsi());
  MultiWorkload mw;
  mw.segmented = BuildWorkload(presets::NyfCheckins(num_users),
                               presets::NyBusRoutes(routes, stops), model,
                               env.DefaultBeta(), TrajMode::kSegmented);
  mw.full = BuildWorkload(presets::NyfCheckins(num_users),
                          presets::NyBusRoutes(routes, stops), model,
                          env.DefaultBeta(), TrajMode::kWhole,
                          static_cast<BuildWhat>(
                              static_cast<unsigned>(BuildWhat::kBasic) |
                              static_cast<unsigned>(BuildWhat::kZOrder)));
  return mw;
}

void MeasureRow(MultiWorkload* mw, size_t k, const BenchEnv& env,
                const std::string& label) {
  double sink = 0.0;
  const double bl = TimeAvgSeconds(env.reps, [&] {
    sink += TopKFacilitiesBaseline(*mw->segmented.bl_index,
                                   *mw->segmented.catalog,
                                   *mw->segmented.eval, k)
                .ranked[0]
                .value;
  });
  auto tq_time = [&](TQTree* tree, const Workload& w) {
    return TimeAvgSeconds(env.reps, [&] {
      sink += TopKFacilitiesTQ(tree, *w.catalog, *w.eval, k)
                  .ranked[0]
                  .value;
    });
  };
  const double stb = tq_time(mw->segmented.tq_basic.get(), mw->segmented);
  const double stz = tq_time(mw->segmented.tq_z.get(), mw->segmented);
  const double ftb = tq_time(mw->full.tq_basic.get(), mw->full);
  const double ftz = tq_time(mw->full.tq_z.get(), mw->full);
  PrintTimeRow(label, {"BL", "S_TQ_B", "S_TQ_Z", "F_TQ_B", "F_TQ_Z"},
               {bl, stb, stz, ftb, ftz});
  if (sink < 0) std::printf("impossible\n");
}

}  // namespace

int main() {
  BenchEnv env = BenchEnv::FromEnv();
  // Multipoint top-k queries are the heaviest in the suite; cap repetitions
  // so the default run stays in bench-suite budget (REPRO_REPS overrides).
  if (std::getenv("REPRO_REPS") == nullptr) {
    env.reps = std::max<size_t>(1, env.reps / 2);
  }
  const auto num_users = static_cast<size_t>(212751 * env.scale);
  std::printf("Figure 8: multipoint NYF kMaxRRST (users=%zu reps=%zu)\n",
              num_users, env.reps);

  Banner("Fig 8(a): time vs #stops");
  PrintSeriesHeader({"BL", "S_TQ_B", "S_TQ_Z", "F_TQ_B", "F_TQ_Z"});
  for (const size_t stops : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    MultiWorkload mw = Build(env, num_users, 64, stops);
    MeasureRow(&mw, env.DefaultK(), env, "S=" + std::to_string(stops));
  }

  Banner("Fig 8(b): time vs #facilities");
  PrintSeriesHeader({"BL", "S_TQ_B", "S_TQ_Z", "F_TQ_B", "F_TQ_Z"});
  for (const size_t nf : {16u, 32u, 64u, 128u, 256u, 512u}) {
    MultiWorkload mw = Build(env, num_users, nf, env.DefaultStops());
    MeasureRow(&mw, env.DefaultK(), env, "N=" + std::to_string(nf));
  }
  return 0;
}
