// Figure 6: average time to compute the service value of a single facility.
//   (a) vs number of user trajectories (NYT 0.5/1/2/3 days, Table III);
//   (b) vs number of stops per facility (8..512).
// Series: BL (point-quadtree baseline), TQ(B), TQ(Z).
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

namespace {

// Average per-facility service-value time over all facilities of the
// workload, repeated `reps` times.
void MeasureRow(Workload* w, const BenchEnv& env, const std::string& label) {
  const size_t nf = w->catalog->size();
  double sink = 0.0;
  const double bl = TimeAvgSeconds(env.reps, [&] {
                      for (uint32_t f = 0; f < nf; ++f) {
                        sink += EvaluateServiceBaseline(
                            *w->bl_index, *w->eval, w->catalog->grid(f));
                      }
                    }) /
                    static_cast<double>(nf);
  const double tb = TimeAvgSeconds(env.reps, [&] {
                      for (uint32_t f = 0; f < nf; ++f) {
                        sink += EvaluateServiceTQ(w->tq_basic.get(), *w->eval,
                                                  w->catalog->grid(f));
                      }
                    }) /
                    static_cast<double>(nf);
  const double tz = TimeAvgSeconds(env.reps, [&] {
                      for (uint32_t f = 0; f < nf; ++f) {
                        sink += EvaluateServiceTQ(w->tq_z.get(), *w->eval,
                                                  w->catalog->grid(f));
                      }
                    }) /
                    static_cast<double>(nf);
  PrintTimeRow(label, {"BL", "TQ_B", "TQ_Z"}, {bl, tb, tz});
  if (sink < 0) std::printf("impossible\n");  // keep the work observable
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  std::printf("Figure 6: service value of a single facility "
              "(scale=%.3f reps=%zu)\n",
              env.scale, env.reps);

  Banner("Fig 6(a): time vs #user trajectories (days of NYT)");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  {
    const std::vector<const char*> day_labels = {"0.5d", "1d", "2d", "3d"};
    const std::vector<size_t> sweep = presets::NytUserSweep(env.scale);
    for (size_t i = 0; i < sweep.size(); ++i) {
      Workload w = BuildWorkload(
          presets::NytTrips(sweep[i]),
          presets::NyBusRoutes(16, env.DefaultStops()), model,
          env.DefaultBeta());
      MeasureRow(&w, env, day_labels[i]);
    }
  }

  Banner("Fig 6(b): time vs #stops per facility");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  for (const size_t stops : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    Workload w = BuildWorkload(presets::NytTrips(env.DefaultUsers()),
                               presets::NyBusRoutes(16, stops), model,
                               env.DefaultBeta());
    MeasureRow(&w, env, "S=" + std::to_string(stops));
  }
  return 0;
}
