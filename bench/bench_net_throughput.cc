// Network front-end throughput on the NYF preset: requests/sec and
// round-trip latency of the epoll TCP server (src/net/server.h) over the
// sharded engine, driven from loopback by C concurrent client connections
// sending sum-batch frames of B queries each.
//
// Three series per (connections, batch) cell:
//   * rps     — individual queries/sec with synchronous round-trips (each
//               client waits for a frame's response before the next frame);
//               batch size is the amortization lever.
//   * p50/p99 — per-frame round-trip latency across every client.
//   * pipe_rps — the async-batch client API: every client pipelines all its
//               frames before draining responses, so the whole run costs
//               one round-trip of latency. Upper bound on what the wire
//               format + epoll loop can move.
//
// The result cache is enabled and warmed (the serving steady state: the
// measurement isolates FRONT-END cost — framing, dispatch, fan-in,
// syscalls — not tree traversal). Emits "# json: net_throughput"; CI gates
// on requests/sec staying positive at batch 16 so the front-end cannot
// silently stop serving. Honors REPRO_SCALE / REPRO_FULL (bench_util.h).
//
// A second series ("# json: net_backpressure") measures admission control:
// sustainable throughput is calibrated with synchronous round-trips, then
// a 2× pipelined burst is offered against max_queued=8 — reporting the
// shed rate (refused in-protocol with kOverloaded) and the goodput that
// survived the overload. CI gates shed > 0 and goodput > 0.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/sharded_engine.h"

namespace {

using tq::net::NetClient;
using tq::net::NetRequest;
using tq::net::NetResponse;
using tq::net::NetServer;
using tq::net::NetServerOptions;

struct NetResult {
  size_t connections = 0;
  size_t batch = 0;
  size_t queries = 0;
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double pipe_rps = 0.0;
  // Same pipelined series with latency recording disabled — the pair
  // measures the histogram/trace observability overhead on the hot path.
  double pipe_nohist_rps = 0.0;
  double hist_overhead_pct = 0.0;
};

}  // namespace

int main() {
  const auto env = tq::bench::BenchEnv::FromEnv();
  const auto num_users = static_cast<size_t>(212751 * env.scale);
  tq::TrajectorySet users = tq::presets::NyfCheckins(num_users);
  tq::TrajectorySet routes =
      tq::presets::NyBusRoutes(env.DefaultFacilities(), env.DefaultStops());
  const size_t num_fac = routes.size();

  tq::runtime::ShardedEngineOptions options;
  options.num_shards = 4;
  options.num_threads = 4;
  options.cache_capacity = 4096;
  options.tree.beta = env.DefaultBeta();
  options.tree.model = tq::ServiceModel::PointCount(env.DefaultPsi());
  // Copies for the overload series below, taken before the move: that
  // engine runs cache-less so its queries do real tree work.
  tq::TrajectorySet overload_users = users;
  tq::TrajectorySet overload_routes = routes;
  tq::runtime::ShardedEngine engine(std::move(users), std::move(routes),
                                    options);
  NetServer server(&engine, NetServerOptions{});  // port 0: ephemeral
  const tq::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  tq::bench::Banner("Net throughput — loopback, sum-batch frames");
  std::printf("users=%zu facilities=%zu shards=%zu threads=%zu port=%u\n",
              num_users, num_fac, options.num_shards, options.num_threads,
              server.port());

  // Warm the result cache once so every measured run hits the serving
  // steady state (per-shard entries for every facility).
  {
    NetClient warm;
    TQ_CHECK(warm.Connect("127.0.0.1", server.port()).ok());
    std::vector<tq::FacilityId> all(num_fac);
    for (uint32_t f = 0; f < num_fac; ++f) all[f] = f;
    NetResponse r;
    TQ_CHECK(warm.Sum(all, &r).ok() && r.status.ok());
  }

  // Frames per client, scaled so every cell issues a comparable number of
  // queries regardless of batch size.
  const size_t target_queries =
      std::max<size_t>(4 * num_fac, env.reps * num_fac);

  tq::bench::PrintSeriesHeader(
      {"rps", "p50_ms", "p99_ms", "pipe_rps", "overhead_pct"});
  std::vector<NetResult> results;
  for (const size_t connections : {1u, 4u, 8u}) {
    for (const size_t batch : {1u, 16u, 64u}) {
      NetResult r;
      r.connections = connections;
      r.batch = batch;
      const size_t frames_per_client =
          std::max<size_t>(8, target_queries / (connections * batch));
      r.queries = frames_per_client * connections * batch;

      // Synchronous round-trips: one frame in flight per connection. One
      // wait-free recorder shared by every client thread (bench_util.h).
      tq::bench::LatencyRecorder recorder;
      {
        std::vector<std::thread> clients;
        tq::Timer timer;
        for (size_t c = 0; c < connections; ++c) {
          clients.emplace_back([&, c]() {
            NetClient client;
            TQ_CHECK(client.Connect("127.0.0.1", server.port()).ok());
            std::vector<tq::FacilityId> ids(batch);
            for (size_t i = 0; i < frames_per_client; ++i) {
              for (size_t b = 0; b < batch; ++b) {
                ids[b] = static_cast<tq::FacilityId>(
                    (c + i * batch + b) % num_fac);
              }
              NetResponse resp;
              tq::Timer frame_timer;
              TQ_CHECK(client.Sum(ids, &resp).ok() && resp.status.ok());
              recorder.RecordSeconds(frame_timer.ElapsedSeconds());
              TQ_CHECK(resp.sums.size() == batch);
            }
          });
        }
        for (auto& t : clients) t.join();
        r.rps = static_cast<double>(r.queries) / timer.ElapsedSeconds();
      }
      const tq::runtime::HistogramSnapshot lat = recorder.Snapshot();
      r.p50_ms = tq::bench::PercentileMs(lat, 0.50);
      r.p99_ms = tq::bench::PercentileMs(lat, 0.99);

      // Pipelined: queue every frame, flush once, drain in order. Run the
      // same series twice — latency recording on, then off — to price the
      // observability hot path (histogram records + sampled traces). The
      // frame set loops `rounds` times so one run lasts long enough to
      // measure (a single pass is milliseconds at small REPRO_SCALE, all
      // scheduler jitter).
      const size_t rounds =
          std::max<size_t>(1, 65536 / std::max<size_t>(1, r.queries));
      const auto pipelined_rps = [&]() {
        std::vector<std::thread> clients;
        tq::Timer timer;
        for (size_t c = 0; c < connections; ++c) {
          clients.emplace_back([&, c]() {
            NetClient client;
            TQ_CHECK(client.Connect("127.0.0.1", server.port()).ok());
            std::vector<tq::FacilityId> ids(batch);
            for (size_t round = 0; round < rounds; ++round) {
              for (size_t i = 0; i < frames_per_client; ++i) {
                for (size_t b = 0; b < batch; ++b) {
                  ids[b] = static_cast<tq::FacilityId>(
                      (c + i * batch + b) % num_fac);
                }
                TQ_CHECK(client.Send(NetRequest::Sum(ids)).ok());
              }
              TQ_CHECK(client.Flush().ok());
              for (size_t i = 0; i < frames_per_client; ++i) {
                NetResponse resp;
                TQ_CHECK(client.Receive(&resp).ok() && resp.status.ok());
              }
            }
          });
        }
        for (auto& t : clients) t.join();
        return static_cast<double>(r.queries * rounds) /
               timer.ElapsedSeconds();
      };
      // Interleaved best-of-N per mode: single pipelined runs last
      // milliseconds at small REPRO_SCALE, so one-shot A/B deltas are
      // scheduler noise. Best-of filters the noise floor; interleaving
      // keeps warm-up and frequency drift from biasing one mode.
      for (int rep = 0; rep < 3; ++rep) {
        engine.mutable_metrics()->set_latency_recording(true);
        r.pipe_rps = std::max(r.pipe_rps, pipelined_rps());
        engine.mutable_metrics()->set_latency_recording(false);
        r.pipe_nohist_rps = std::max(r.pipe_nohist_rps, pipelined_rps());
      }
      engine.mutable_metrics()->set_latency_recording(true);
      r.hist_overhead_pct =
          r.pipe_nohist_rps > 0.0
              ? 100.0 * (r.pipe_nohist_rps - r.pipe_rps) / r.pipe_nohist_rps
              : 0.0;

      results.push_back(r);
      char label[48];
      std::snprintf(label, sizeof(label), "conns=%zu,batch=%zu", connections,
                    batch);
      tq::bench::PrintTimeRow(
          label, {"rps", "p50_ms", "p99_ms", "pipe_rps", "overhead_pct"},
          {r.rps, r.p50_ms, r.p99_ms, r.pipe_rps, r.hist_overhead_pct});
    }
  }
  server.Stop();

  // Aggregate observability overhead across the whole pipelined series:
  // per-cell deltas on millisecond runs still jitter, but the summed
  // best-run times integrate over every (connections, batch) cell.
  double on_s = 0.0, off_s = 0.0;
  for (const NetResult& r : results) {
    if (r.pipe_rps > 0.0) on_s += static_cast<double>(r.queries) / r.pipe_rps;
    if (r.pipe_nohist_rps > 0.0) {
      off_s += static_cast<double>(r.queries) / r.pipe_nohist_rps;
    }
  }
  const double total_overhead_pct =
      off_s > 0.0 ? 100.0 * (on_s - off_s) / off_s : 0.0;
  std::printf("\npipelined observability overhead (aggregate, best-of-3 "
              "per cell): %.2f%%\n", total_overhead_pct);

  const tq::runtime::MetricsView m = engine.metrics().Read();
  std::printf("\nserver totals: %llu connections, %llu frames decoded, "
              "%llu bytes in, %llu bytes out\n",
              static_cast<unsigned long long>(m.net_connections),
              static_cast<unsigned long long>(m.net_requests_decoded),
              static_cast<unsigned long long>(m.net_bytes_in),
              static_cast<unsigned long long>(m.net_bytes_out));

  std::printf("# json: {\"bench\":\"net_throughput\",\"preset\":\"nyf\","
              "\"users\":%zu,\"facilities\":%zu,\"shards\":%zu,"
              "\"threads\":%zu,\"results\":[",
              num_users, num_fac, options.num_shards, options.num_threads);
  for (size_t i = 0; i < results.size(); ++i) {
    const NetResult& r = results[i];
    std::printf(
        "%s{\"connections\":%zu,\"batch\":%zu,\"queries\":%zu,"
        "\"requests_per_sec\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"pipelined_requests_per_sec\":%.1f,"
        "\"pipelined_nohist_requests_per_sec\":%.1f,"
        "\"hist_overhead_pct\":%.2f}",
        i == 0 ? "" : ",", r.connections, r.batch, r.queries, r.rps,
        r.p50_ms, r.p99_ms, r.pipe_rps, r.pipe_nohist_rps,
        r.hist_overhead_pct);
  }
  std::printf("],\"hist_overhead_pct_total\":%.2f}\n", total_overhead_pct);

  // ---- overload / backpressure series ----------------------------------
  // A fresh cache-less engine (every top-k does real multi-shard work, so
  // the queue genuinely backs up) behind a server with admission control
  // armed. Calibrate sustainable throughput with synchronous round-trips
  // (one frame in flight can never trip max_queued), then offer the whole
  // 2× budget as one pipelined burst: a deliberate overload. The
  // interesting outputs are the shed rate (how much was refused
  // in-protocol) and the goodput (served queries/sec did NOT collapse
  // under the burst).
  tq::runtime::ShardedEngineOptions oopts = options;
  oopts.cache_capacity = 0;
  oopts.num_threads = 2;
  tq::runtime::ShardedEngine overload_engine(std::move(overload_users),
                                             std::move(overload_routes),
                                             oopts);
  NetServerOptions overload_options;
  overload_options.max_queued = 8;
  NetServer overload_server(&overload_engine, overload_options);
  TQ_CHECK(overload_server.Start().ok());
  const uint64_t shed_before = overload_engine.metrics().Read().net_shed;

  double sync_rps = 0.0;
  {
    NetClient client;
    TQ_CHECK(client.Connect("127.0.0.1", overload_server.port()).ok());
    const size_t calib = std::max<size_t>(50, env.reps * 10);
    tq::Timer timer;
    for (size_t i = 0; i < calib; ++i) {
      NetResponse resp;
      TQ_CHECK(client.TopK({8}, &resp).ok() && resp.status.ok());
    }
    sync_rps = static_cast<double>(calib) / timer.ElapsedSeconds();
  }

  // Two seconds of calibrated capacity, delivered all at once across 4
  // pipelined connections (bounded so tiny REPRO_SCALE machines finish).
  const size_t offered = std::min<size_t>(
      20000, std::max<size_t>(400, static_cast<size_t>(2.0 * sync_rps)));
  const size_t burst_conns = 4;
  std::atomic<size_t> served{0}, shed{0};
  tq::Timer burst_timer;
  {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < burst_conns; ++c) {
      clients.emplace_back([&]() {
        NetClient client;
        TQ_CHECK(client.Connect("127.0.0.1", overload_server.port()).ok());
        const size_t frames = offered / burst_conns;
        for (size_t i = 0; i < frames; ++i) {
          TQ_CHECK(client.Send(NetRequest::TopK({8})).ok());
        }
        TQ_CHECK(client.Flush().ok());
        for (size_t i = 0; i < frames; ++i) {
          NetResponse resp;
          TQ_CHECK(client.Receive(&resp).ok());
          if (resp.status.ok()) {
            served.fetch_add(1);
          } else {
            TQ_CHECK(resp.status.code() == tq::StatusCode::kOverloaded);
            shed.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double burst_s = burst_timer.ElapsedSeconds();
  overload_server.Stop();
  const uint64_t net_shed =
      overload_engine.metrics().Read().net_shed - shed_before;
  TQ_CHECK(net_shed == shed.load());
  const size_t answered = served.load() + shed.load();
  const double shed_rate =
      answered > 0 ? static_cast<double>(shed.load()) / answered : 0.0;
  const double goodput = static_cast<double>(served.load()) / burst_s;

  std::printf("\noverload burst (max_queued=%zu): offered=%zu served=%zu "
              "shed=%zu (%.1f%%) goodput=%.0f rps sync_capacity=%.0f rps\n",
              overload_options.max_queued, answered, served.load(),
              shed.load(), 100.0 * shed_rate, goodput, sync_rps);
  std::printf("# json: {\"bench\":\"net_backpressure\",\"preset\":\"nyf\","
              "\"users\":%zu,\"facilities\":%zu,\"max_queued\":%zu,"
              "\"sync_capacity_rps\":%.1f,\"offered\":%zu,\"served\":%zu,"
              "\"shed\":%zu,\"shed_rate\":%.4f,\"goodput_rps\":%.1f}\n",
              num_users, num_fac, overload_options.max_queued, sync_rps,
              answered, served.load(), shed.load(), shed_rate, goodput);
  return 0;
}
