// Shared harness utilities for the per-figure benchmark binaries.
//
// Every binary prints (a) an aligned human-readable table mirroring the
// paper's figure series and (b) machine-readable "# csv:" lines.
//
// Environment knobs:
//   REPRO_FULL=1    — run at the paper's full workload sizes (Table III).
//   REPRO_SCALE=x   — explicit workload scale factor (default 0.1).
//   REPRO_REPS=n    — query repetitions per measurement (default 5; the
//                     paper averages 100 query sets).
#ifndef TQCOVER_BENCH_BENCH_UTIL_H_
#define TQCOVER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "datagen/presets.h"
#include "runtime/histogram.h"
#include "quadtree/point_quadtree.h"
#include "query/baseline.h"
#include "query/topk.h"
#include "service/evaluator.h"
#include "service/facility_index.h"
#include "tqtree/tq_tree.h"

namespace tq::bench {

/// Global benchmark configuration from the environment.
struct BenchEnv {
  double scale = 0.1;
  size_t reps = 5;
  bool full = false;

  static BenchEnv FromEnv() {
    BenchEnv env;
    if (const char* f = std::getenv("REPRO_FULL"); f && f[0] == '1') {
      env.full = true;
      env.scale = 1.0;
    }
    if (const char* s = std::getenv("REPRO_SCALE")) {
      env.scale = std::atof(s);
      if (env.scale <= 0) env.scale = 0.1;
    }
    if (const char* r = std::getenv("REPRO_REPS")) {
      env.reps = static_cast<size_t>(std::atoi(r));
      if (env.reps == 0) env.reps = 1;
    }
    return env;
  }

  /// Table III defaults (bold values), scaled.
  size_t DefaultUsers() const {
    return static_cast<size_t>(357139 * scale);  // NYT, 1 day
  }
  size_t DefaultFacilities() const { return 128; }
  size_t DefaultStops() const { return 64; }
  size_t DefaultK() const { return 8; }
  double DefaultPsi() const { return 200.0; }
  size_t DefaultBeta() const { return 64; }
};

/// One fully-built workload: users + facilities + all three indexes.
/// The trajectory sets live behind unique_ptr so the evaluator/catalog/tree
/// pointers into them stay valid when a Workload itself is moved.
struct Workload {
  std::unique_ptr<TrajectorySet> users;
  std::unique_ptr<TrajectorySet> facilities;
  ServiceModel model;
  std::unique_ptr<ServiceEvaluator> eval;
  std::unique_ptr<FacilityCatalog> catalog;
  std::unique_ptr<PointQuadtree> bl_index;
  std::unique_ptr<TQTree> tq_basic;
  std::unique_ptr<TQTree> tq_z;
  double build_bl_s = 0, build_basic_s = 0, build_z_s = 0;
};

enum class BuildWhat : unsigned {
  kBaseline = 1,
  kBasic = 2,
  kZOrder = 4,
  kAll = 7,
};
inline bool Has(BuildWhat set, BuildWhat bit) {
  return (static_cast<unsigned>(set) & static_cast<unsigned>(bit)) != 0;
}

/// Builds the indexes for a given user/facility pair.
inline Workload BuildWorkload(TrajectorySet users, TrajectorySet facilities,
                              const ServiceModel& model, size_t beta,
                              TrajMode mode = TrajMode::kWhole,
                              BuildWhat what = BuildWhat::kAll) {
  Workload w;
  w.users = std::make_unique<TrajectorySet>(std::move(users));
  w.facilities = std::make_unique<TrajectorySet>(std::move(facilities));
  w.model = model;
  w.eval = std::make_unique<ServiceEvaluator>(w.users.get(), model);
  w.catalog =
      std::make_unique<FacilityCatalog>(w.facilities.get(), model.psi);
  if (Has(what, BuildWhat::kBaseline)) {
    Timer t;
    w.bl_index = std::make_unique<PointQuadtree>(
        w.users->BoundingBox().Expanded(1.0), 128);
    w.bl_index->InsertAll(*w.users);
    w.build_bl_s = t.ElapsedSeconds();
  }
  TQTreeOptions opt;
  opt.beta = beta;
  opt.mode = mode;
  opt.model = model;
  if (Has(what, BuildWhat::kBasic)) {
    Timer t;
    opt.variant = IndexVariant::kBasic;
    w.tq_basic = std::make_unique<TQTree>(w.users.get(), opt);
    w.build_basic_s = t.ElapsedSeconds();
  }
  if (Has(what, BuildWhat::kZOrder)) {
    Timer t;
    opt.variant = IndexVariant::kZOrder;
    w.tq_z = std::make_unique<TQTree>(w.users.get(), opt);
    w.build_z_s = t.ElapsedSeconds();
  }
  return w;
}

/// Latency accumulator for the benchmark binaries, backed by the runtime's
/// log-bucketed histogram (runtime/histogram.h) — the same machinery the
/// serving engine exports over kStats, so bench percentiles and scraped
/// percentiles agree on bucketing (≤ 12.5% relative error per sample).
/// Record is wait-free and thread-striped: one recorder can be shared by
/// every client thread of a bench cell, replacing the per-thread
/// sort-a-vector percentile code each bench used to carry.
class LatencyRecorder {
 public:
  void RecordSeconds(double seconds) {
    RecordNs(seconds <= 0 ? 0 : static_cast<uint64_t>(seconds * 1e9));
  }
  void RecordNs(uint64_t ns) { hist_.Record(ns); }
  runtime::HistogramSnapshot Snapshot() const { return hist_.Read(); }

 private:
  runtime::LatencyHistogram hist_;
};

/// Percentile in milliseconds off a histogram snapshot (p in [0, 1]).
inline double PercentileMs(const runtime::HistogramSnapshot& snap,
                           double p) {
  return static_cast<double>(snap.Percentile(p)) / 1e6;
}

/// Average seconds over `reps` runs of `fn`.
template <typename Fn>
double TimeAvgSeconds(size_t reps, Fn&& fn) {
  Timer t;
  for (size_t i = 0; i < reps; ++i) fn();
  return t.ElapsedSeconds() / static_cast<double>(reps);
}

/// Section banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Aligned row of label + seconds columns, mirrored as a csv comment.
inline void PrintTimeRow(const std::string& x_label,
                         const std::vector<std::string>& series,
                         const std::vector<double>& seconds) {
  std::printf("%-14s", x_label.c_str());
  for (const double s : seconds) std::printf(" %12.6f", s);
  std::printf("\n");
  std::printf("# csv:%s", x_label.c_str());
  for (size_t i = 0; i < series.size(); ++i) {
    std::printf(",%s=%.9f", series[i].c_str(), seconds[i]);
  }
  std::printf("\n");
}

inline void PrintSeriesHeader(const std::vector<std::string>& series) {
  std::printf("%-14s", "x");
  for (const auto& s : series) std::printf(" %12s", s.c_str());
  std::printf("\n");
}

}  // namespace tq::bench

#endif  // TQCOVER_BENCH_BENCH_UTIL_H_
