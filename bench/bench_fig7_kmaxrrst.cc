// Figure 7: total kMaxRRST query time on NYT.
//   (a) vs #user trajectories; (b) vs k; (c) vs #stops; (d) vs #facilities.
// Series: BL, TQ(B), TQ(Z) — TQ rows use the best-first search (Alg. 3/4).
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

namespace {

void MeasureTopK(Workload* w, size_t k, const BenchEnv& env,
                 const std::string& label) {
  double sink = 0.0;
  const double bl = TimeAvgSeconds(env.reps, [&] {
    sink += TopKFacilitiesBaseline(*w->bl_index, *w->catalog, *w->eval, k)
                .ranked[0]
                .value;
  });
  const double tb = TimeAvgSeconds(env.reps, [&] {
    sink += TopKFacilitiesTQ(w->tq_basic.get(), *w->catalog, *w->eval, k)
                .ranked[0]
                .value;
  });
  const double tz = TimeAvgSeconds(env.reps, [&] {
    sink += TopKFacilitiesTQ(w->tq_z.get(), *w->catalog, *w->eval, k)
                .ranked[0]
                .value;
  });
  PrintTimeRow(label, {"BL", "TQ_B", "TQ_Z"}, {bl, tb, tz});
  if (sink < 0) std::printf("impossible\n");
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  std::printf("Figure 7: kMaxRRST on NYT (scale=%.3f reps=%zu)\n", env.scale,
              env.reps);

  Banner("Fig 7(a): time vs #user trajectories (days of NYT)");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  {
    const std::vector<const char*> day_labels = {"0.5d", "1d", "2d", "3d"};
    const std::vector<size_t> sweep = presets::NytUserSweep(env.scale);
    for (size_t i = 0; i < sweep.size(); ++i) {
      Workload w = BuildWorkload(
          presets::NytTrips(sweep[i]),
          presets::NyBusRoutes(env.DefaultFacilities(), env.DefaultStops()),
          model, env.DefaultBeta());
      MeasureTopK(&w, env.DefaultK(), env, day_labels[i]);
    }
  }

  Banner("Fig 7(b): time vs k");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  {
    Workload w = BuildWorkload(
        presets::NytTrips(env.DefaultUsers()),
        presets::NyBusRoutes(env.DefaultFacilities(), env.DefaultStops()),
        model, env.DefaultBeta());
    for (const size_t k : {4u, 8u, 16u, 32u}) {
      MeasureTopK(&w, k, env, "k=" + std::to_string(k));
    }
  }

  Banner("Fig 7(c): time vs #stops");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  for (const size_t stops : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    Workload w = BuildWorkload(
        presets::NytTrips(env.DefaultUsers()),
        presets::NyBusRoutes(env.DefaultFacilities(), stops), model,
        env.DefaultBeta());
    MeasureTopK(&w, env.DefaultK(), env, "S=" + std::to_string(stops));
  }

  Banner("Fig 7(d): time vs #facilities");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  for (const size_t nf : {16u, 32u, 64u, 128u, 256u, 512u}) {
    Workload w = BuildWorkload(presets::NytTrips(env.DefaultUsers()),
                               presets::NyBusRoutes(nf, env.DefaultStops()),
                               model, env.DefaultBeta());
    MeasureTopK(&w, env.DefaultK(), env, "N=" + std::to_string(nf));
  }
  return 0;
}
