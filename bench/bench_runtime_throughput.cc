// Concurrent runtime throughput on the NYF preset: queries/sec of the
// unsharded serving engine (src/runtime/engine.h) at 1/2/4/8 worker
// threads, then the sharded scatter/gather engine
// (src/runtime/sharded_engine.h) across a shards × threads matrix.
//
// Two series per configuration:
//   * qps        — result cache disabled: raw compute scaling of the
//                  executor over lock-free snapshot readers.
//   * cached_qps — warm sharded LRU cache: the serving steady state where
//                  popular facilities repeat.
//
// Besides the usual table + "# csv:" lines, emits two "# json:" lines
// ("runtime_throughput" and "runtime_throughput_sharded") so the
// BENCH_runtime.json trajectory can track queries/sec across PRs. Honors
// REPRO_SCALE / REPRO_FULL (bench_util.h).
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"

namespace {

using tq::runtime::Engine;
using tq::runtime::EngineOptions;
using tq::runtime::QueryRequest;
using tq::runtime::QueryResponse;
using tq::runtime::ShardedEngine;
using tq::runtime::ShardedEngineOptions;

struct ThroughputResult {
  size_t shards = 0;  // 0 = unsharded engine
  size_t threads = 0;
  double qps = 0.0;
  double cached_qps = 0.0;
};

// Wall-clock queries/sec for `num_queries` service-value queries issued
// round-robin over the catalog. `warm_pass` first runs the same stream once
// so a second, measured pass hits the cache. Works for both engine types —
// they speak the same Submit/QueryRequest protocol.
template <typename EngineT>
double MeasureQps(EngineT* engine, size_t num_queries, bool warm_pass) {
  const size_t num_fac = engine->snapshot()->catalog->size();
  const auto run = [&]() {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(num_queries);
    for (size_t q = 0; q < num_queries; ++q) {
      futures.push_back(engine->Submit(QueryRequest::ServiceValue(
          static_cast<tq::FacilityId>(q % num_fac))));
    }
    double checksum = 0.0;
    for (auto& f : futures) checksum += f.get().value;
    return checksum;
  };
  if (warm_pass) (void)run();
  tq::Timer timer;
  (void)run();
  return static_cast<double>(num_queries) / timer.ElapsedSeconds();
}

}  // namespace

int main() {
  const auto env = tq::bench::BenchEnv::FromEnv();
  // NYF: multipoint check-in trajectories (paper full scale 212,751) under
  // the Scenario-2 point-count model, served by NY bus routes.
  const auto num_users = static_cast<size_t>(212751 * env.scale);
  tq::TrajectorySet users = tq::presets::NyfCheckins(num_users);
  tq::TrajectorySet routes =
      tq::presets::NyBusRoutes(env.DefaultFacilities(), env.DefaultStops());
  const tq::ServiceModel model =
      tq::ServiceModel::PointCount(env.DefaultPsi());
  const size_t num_queries =
      std::max<size_t>(env.reps * routes.size(), 4 * routes.size());

  const unsigned cores = std::thread::hardware_concurrency();
  tq::bench::Banner("Runtime throughput — NYF preset, kMaxRRST serving");
  std::printf("users=%zu facilities=%zu queries=%zu psi=%.0f beta=%zu "
              "cores=%u\n",
              users.size(), routes.size(), num_queries, env.DefaultPsi(),
              env.DefaultBeta(), cores);
  if (cores < 8) {
    std::printf("note: only %u hardware threads — thread-count scaling is "
                "bounded by the machine, not the executor\n", cores);
  }
  tq::bench::PrintSeriesHeader({"qps", "cached_qps"});

  std::vector<ThroughputResult> results;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    ThroughputResult r;
    r.threads = threads;
    {
      EngineOptions options;
      options.num_threads = threads;
      options.cache_capacity = 0;  // raw compute scaling
      options.tree.beta = env.DefaultBeta();
      options.tree.model = model;
      Engine engine(users, routes, options);
      r.qps = MeasureQps(&engine, num_queries, /*warm_pass=*/false);
    }
    {
      EngineOptions options;
      options.num_threads = threads;
      options.cache_capacity = 4096;
      options.tree.beta = env.DefaultBeta();
      options.tree.model = model;
      Engine engine(users, routes, options);
      r.cached_qps = MeasureQps(&engine, num_queries, /*warm_pass=*/true);
    }
    results.push_back(r);
    char label[32];
    std::snprintf(label, sizeof(label), "threads=%zu", threads);
    tq::bench::PrintTimeRow(label, {"qps", "cached_qps"},
                            {r.qps, r.cached_qps});
  }

  const double speedup =
      results.front().qps > 0 ? results.back().qps / results.front().qps : 0;
  std::printf("\nspeedup (8 threads vs 1, uncached): %.2fx\n", speedup);

  std::printf("# json: {\"bench\":\"runtime_throughput\",\"preset\":\"nyf\","
              "\"users\":%zu,\"facilities\":%zu,\"queries\":%zu,"
              "\"cores\":%u,\"results\":[",
              users.size(), routes.size(), num_queries, cores);
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%s{\"threads\":%zu,\"qps\":%.1f,\"cached_qps\":%.1f}",
                i == 0 ? "" : ",", results[i].threads, results[i].qps,
                results[i].cached_qps);
  }
  std::printf("],\"speedup_8v1\":%.3f}\n", speedup);

  // Sharded scatter/gather: the shards × threads matrix. Shard count 1 vs
  // the unsharded series above isolates the scatter/gather overhead; higher
  // shard counts show partitioned-tree scaling.
  tq::bench::Banner("Sharded runtime throughput — shards × threads matrix");
  tq::bench::PrintSeriesHeader({"qps", "cached_qps"});
  std::vector<ThroughputResult> sharded_results;
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      ThroughputResult r;
      r.shards = shards;
      r.threads = threads;
      {
        ShardedEngineOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        options.cache_capacity = 0;  // raw compute scaling
        options.tree.beta = env.DefaultBeta();
        options.tree.model = model;
        ShardedEngine engine(users, routes, options);
        r.qps = MeasureQps(&engine, num_queries, /*warm_pass=*/false);
      }
      {
        ShardedEngineOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        options.cache_capacity = 4096;
        options.tree.beta = env.DefaultBeta();
        options.tree.model = model;
        ShardedEngine engine(users, routes, options);
        r.cached_qps = MeasureQps(&engine, num_queries, /*warm_pass=*/true);
      }
      sharded_results.push_back(r);
      char label[48];
      std::snprintf(label, sizeof(label), "shards=%zu,thr=%zu", shards,
                    threads);
      tq::bench::PrintTimeRow(label, {"qps", "cached_qps"},
                              {r.qps, r.cached_qps});
    }
  }

  std::printf("# json: {\"bench\":\"runtime_throughput_sharded\","
              "\"preset\":\"nyf\",\"users\":%zu,\"facilities\":%zu,"
              "\"queries\":%zu,\"cores\":%u,\"results\":[",
              users.size(), routes.size(), num_queries, cores);
  for (size_t i = 0; i < sharded_results.size(); ++i) {
    std::printf(
        "%s{\"shards\":%zu,\"threads\":%zu,\"qps\":%.1f,"
        "\"cached_qps\":%.1f}",
        i == 0 ? "" : ",", sharded_results[i].shards,
        sharded_results[i].threads, sharded_results[i].qps,
        sharded_results[i].cached_qps);
  }
  std::printf("]}\n");
  return 0;
}
