// Concurrent runtime throughput on the NYF preset: queries/sec of the
// unsharded serving engine (src/runtime/engine.h) at 1/2/4/8 worker
// threads, then the sharded scatter/gather engine
// (src/runtime/sharded_engine.h) across a shards × threads matrix.
//
// Two series per configuration:
//   * qps        — result cache disabled: raw compute scaling of the
//                  executor over lock-free snapshot readers.
//   * cached_qps — warm sharded LRU cache: the serving steady state where
//                  popular facilities repeat.
//
// A third section measures the WRITE path: publishes/sec and p50/p99
// publish latency of forked (path-copying) snapshot publishes at batch
// sizes 1/16/256, plus nodes_copied per publish against the tree's total —
// the number that proves a publish is O(batch × depth), not a full clone.
//
// A fourth section measures BOUND-AND-PRUNE top-k: per (shards, k), the
// fraction of (facility, shard) slots the pruned protocol exactly
// evaluates (exhaustive sweep = 1.0) and the pruned vs exhaustive query
// latency. CI gates on its facilities_evaluated staying below
// total_facilities for k=10, shards=4.
//
// Besides the usual table + "# csv:" lines, emits four "# json:" lines
// ("runtime_throughput", "runtime_throughput_sharded",
// "runtime_write_path" and "runtime_topk_prune") so the
// BENCH_runtime.json trajectory can track read QPS, write scaling and
// pruning effectiveness across PRs. Honors REPRO_SCALE / REPRO_FULL
// (bench_util.h).
#include <algorithm>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/engine.h"
#include "runtime/sharded_engine.h"

namespace {

using tq::runtime::Engine;
using tq::runtime::EngineOptions;
using tq::runtime::QueryRequest;
using tq::runtime::QueryResponse;
using tq::runtime::ShardedEngine;
using tq::runtime::ShardedEngineOptions;

struct ThroughputResult {
  size_t shards = 0;  // 0 = unsharded engine
  size_t threads = 0;
  double qps = 0.0;
  double cached_qps = 0.0;
};

// Wall-clock queries/sec for `num_queries` service-value queries issued
// round-robin over the catalog. `warm_pass` first runs the same stream once
// so a second, measured pass hits the cache. Works for both engine types —
// they speak the same Submit/QueryRequest protocol.
template <typename EngineT>
double MeasureQps(EngineT* engine, size_t num_queries, bool warm_pass) {
  const size_t num_fac = engine->snapshot()->catalog->size();
  const auto run = [&]() {
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(num_queries);
    for (size_t q = 0; q < num_queries; ++q) {
      futures.push_back(engine->Submit(QueryRequest::ServiceValue(
          static_cast<tq::FacilityId>(q % num_fac))));
    }
    double checksum = 0.0;
    for (auto& f : futures) checksum += f.get().value;
    return checksum;
  };
  if (warm_pass) (void)run();
  tq::Timer timer;
  (void)run();
  return static_cast<double>(num_queries) / timer.ElapsedSeconds();
}

}  // namespace

int main() {
  const auto env = tq::bench::BenchEnv::FromEnv();
  // NYF: multipoint check-in trajectories (paper full scale 212,751) under
  // the Scenario-2 point-count model, served by NY bus routes.
  const auto num_users = static_cast<size_t>(212751 * env.scale);
  tq::TrajectorySet users = tq::presets::NyfCheckins(num_users);
  tq::TrajectorySet routes =
      tq::presets::NyBusRoutes(env.DefaultFacilities(), env.DefaultStops());
  const tq::ServiceModel model =
      tq::ServiceModel::PointCount(env.DefaultPsi());
  const size_t num_queries =
      std::max<size_t>(env.reps * routes.size(), 4 * routes.size());

  const unsigned cores = std::thread::hardware_concurrency();
  tq::bench::Banner("Runtime throughput — NYF preset, kMaxRRST serving");
  std::printf("users=%zu facilities=%zu queries=%zu psi=%.0f beta=%zu "
              "cores=%u\n",
              users.size(), routes.size(), num_queries, env.DefaultPsi(),
              env.DefaultBeta(), cores);
  if (cores < 8) {
    std::printf("note: only %u hardware threads — thread-count scaling is "
                "bounded by the machine, not the executor\n", cores);
  }
  tq::bench::PrintSeriesHeader({"qps", "cached_qps"});

  std::vector<ThroughputResult> results;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    ThroughputResult r;
    r.threads = threads;
    {
      EngineOptions options;
      options.num_threads = threads;
      options.cache_capacity = 0;  // raw compute scaling
      options.tree.beta = env.DefaultBeta();
      options.tree.model = model;
      Engine engine(users, routes, options);
      r.qps = MeasureQps(&engine, num_queries, /*warm_pass=*/false);
    }
    {
      EngineOptions options;
      options.num_threads = threads;
      options.cache_capacity = 4096;
      options.tree.beta = env.DefaultBeta();
      options.tree.model = model;
      Engine engine(users, routes, options);
      r.cached_qps = MeasureQps(&engine, num_queries, /*warm_pass=*/true);
    }
    results.push_back(r);
    char label[32];
    std::snprintf(label, sizeof(label), "threads=%zu", threads);
    tq::bench::PrintTimeRow(label, {"qps", "cached_qps"},
                            {r.qps, r.cached_qps});
  }

  const double speedup =
      results.front().qps > 0 ? results.back().qps / results.front().qps : 0;
  std::printf("\nspeedup (8 threads vs 1, uncached): %.2fx\n", speedup);

  std::printf("# json: {\"bench\":\"runtime_throughput\",\"preset\":\"nyf\","
              "\"users\":%zu,\"facilities\":%zu,\"queries\":%zu,"
              "\"cores\":%u,\"results\":[",
              users.size(), routes.size(), num_queries, cores);
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("%s{\"threads\":%zu,\"qps\":%.1f,\"cached_qps\":%.1f}",
                i == 0 ? "" : ",", results[i].threads, results[i].qps,
                results[i].cached_qps);
  }
  std::printf("],\"speedup_8v1\":%.3f}\n", speedup);

  // Sharded scatter/gather: the shards × threads matrix. Shard count 1 vs
  // the unsharded series above isolates the scatter/gather overhead; higher
  // shard counts show partitioned-tree scaling.
  tq::bench::Banner("Sharded runtime throughput — shards × threads matrix");
  tq::bench::PrintSeriesHeader({"qps", "cached_qps"});
  std::vector<ThroughputResult> sharded_results;
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    for (const size_t threads : {1u, 2u, 4u, 8u}) {
      ThroughputResult r;
      r.shards = shards;
      r.threads = threads;
      {
        ShardedEngineOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        options.cache_capacity = 0;  // raw compute scaling
        options.tree.beta = env.DefaultBeta();
        options.tree.model = model;
        ShardedEngine engine(users, routes, options);
        r.qps = MeasureQps(&engine, num_queries, /*warm_pass=*/false);
      }
      {
        ShardedEngineOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        options.cache_capacity = 4096;
        options.tree.beta = env.DefaultBeta();
        options.tree.model = model;
        ShardedEngine engine(users, routes, options);
        r.cached_qps = MeasureQps(&engine, num_queries, /*warm_pass=*/true);
      }
      sharded_results.push_back(r);
      char label[48];
      std::snprintf(label, sizeof(label), "shards=%zu,thr=%zu", shards,
                    threads);
      tq::bench::PrintTimeRow(label, {"qps", "cached_qps"},
                              {r.qps, r.cached_qps});
    }
  }

  std::printf("# json: {\"bench\":\"runtime_throughput_sharded\","
              "\"preset\":\"nyf\",\"users\":%zu,\"facilities\":%zu,"
              "\"queries\":%zu,\"cores\":%u,\"results\":[",
              users.size(), routes.size(), num_queries, cores);
  for (size_t i = 0; i < sharded_results.size(); ++i) {
    std::printf(
        "%s{\"shards\":%zu,\"threads\":%zu,\"qps\":%.1f,"
        "\"cached_qps\":%.1f}",
        i == 0 ? "" : ",", sharded_results[i].shards,
        sharded_results[i].threads, sharded_results[i].qps,
        sharded_results[i].cached_qps);
  }
  std::printf("]}\n");

  // Write path: forked snapshot publishes at growing batch sizes. Each
  // publish removes and re-inserts a block of trajectories (steady-state
  // churn, both copy-on-write paths exercised). Segmented mode is the
  // write-heavy configuration: per-segment units build the deep tree whose
  // path copies the page store is designed around.
  tq::bench::Banner("Write path — forked publishes, path-copy cost");
  struct WriteResult {
    size_t batch = 0;
    size_t publishes = 0;
    double publishes_per_sec = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    double nodes_copied_per_publish = 0.0;
    double pages_shared_per_publish = 0.0;
  };
  tq::runtime::EngineOptions options;
  options.num_threads = 2;
  options.cache_capacity = 0;
  options.tree.beta = env.DefaultBeta();
  options.tree.mode = tq::TrajMode::kSegmented;
  options.tree.model = model;
  Engine engine(users, routes, options);
  const size_t total_nodes = engine.snapshot()->tree->num_nodes();
  std::printf("tree: %zu nodes over %zu pages (segmented)\n", total_nodes,
              engine.snapshot()->tree->num_pages());
  tq::bench::PrintSeriesHeader(
      {"pub/s", "p50_ms", "p99_ms", "nodes_cp"});
  std::vector<WriteResult> write_results;
  size_t cursor = 0;
  for (const size_t batch_size : {1u, 16u, 256u}) {
    WriteResult r;
    r.batch = batch_size;
    r.publishes = batch_size >= 256 ? 8 : 32;
    tq::bench::LatencyRecorder recorder;
    const tq::runtime::MetricsView m0 = engine.metrics().Read();
    tq::Timer total_timer;
    for (size_t p = 0; p < r.publishes; ++p) {
      tq::runtime::UpdateBatch batch;
      const auto snap = engine.snapshot();
      for (size_t i = 0; i < batch_size; ++i) {
        const auto id = static_cast<uint32_t>(cursor++ % users.size());
        const auto pts = snap->users->points(id);
        batch.inserts.emplace_back(pts.begin(), pts.end());
        batch.removes.push_back(id);
      }
      tq::Timer publish_timer;
      engine.ApplyUpdates(batch);
      recorder.RecordSeconds(publish_timer.ElapsedSeconds());
    }
    const double total_s = total_timer.ElapsedSeconds();
    const tq::runtime::MetricsView m1 = engine.metrics().Read();
    const tq::runtime::HistogramSnapshot lat = recorder.Snapshot();
    r.publishes_per_sec = static_cast<double>(r.publishes) / total_s;
    r.p50_ms = tq::bench::PercentileMs(lat, 0.50);
    r.p99_ms = tq::bench::PercentileMs(lat, 0.99);
    r.nodes_copied_per_publish =
        static_cast<double>(m1.nodes_copied - m0.nodes_copied) /
        static_cast<double>(r.publishes);
    r.pages_shared_per_publish =
        static_cast<double>(m1.pages_shared - m0.pages_shared) /
        static_cast<double>(r.publishes);
    write_results.push_back(r);
    char label[32];
    std::snprintf(label, sizeof(label), "batch=%zu", batch_size);
    tq::bench::PrintTimeRow(label,
                            {"pub/s", "p50_ms", "p99_ms", "nodes_cp"},
                            {r.publishes_per_sec, r.p50_ms, r.p99_ms,
                             r.nodes_copied_per_publish});
  }

  std::printf("# json: {\"bench\":\"runtime_write_path\",\"preset\":\"nyf\","
              "\"users\":%zu,\"total_nodes\":%zu,\"results\":[",
              users.size(), total_nodes);
  for (size_t i = 0; i < write_results.size(); ++i) {
    const WriteResult& r = write_results[i];
    std::printf(
        "%s{\"batch\":%zu,\"publishes\":%zu,\"publishes_per_sec\":%.1f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"nodes_copied_per_publish\":%.1f,"
        "\"pages_shared_per_publish\":%.1f}",
        i == 0 ? "" : ",", r.batch, r.publishes, r.publishes_per_sec,
        r.p50_ms, r.p99_ms, r.nodes_copied_per_publish,
        r.pages_shared_per_publish);
  }
  std::printf("]}\n");

  // Bound-and-prune top-k: evaluated fraction and latency against the
  // exhaustive gather. Cache capacity 0 so every query runs the full
  // protocol (no memoised-answer shortcuts, no per-facility hits).
  tq::bench::Banner("Distributed top-k — bound-and-prune vs exhaustive");
  struct PruneResult {
    size_t shards = 0;
    size_t k = 0;
    uint64_t facilities_evaluated = 0;
    uint64_t total_facilities = 0;  // (facility, shard) evaluation slots
    double evaluated_fraction = 0.0;
    double pruned_ms = 0.0;
    double exhaustive_ms = 0.0;
  };
  std::vector<PruneResult> prune_results;
  tq::bench::PrintSeriesHeader({"eval_frac", "pruned_ms", "exhaust_ms"});
  const size_t prune_reps = std::max<size_t>(3, env.reps);
  for (const size_t shards : {1u, 4u, 8u}) {
    ShardedEngineOptions pruned_options;
    pruned_options.num_shards = shards;
    pruned_options.num_threads = 4;
    pruned_options.cache_capacity = 0;
    pruned_options.prune_topk = true;
    // This series measures the bound-and-prune PROTOCOL itself, including
    // where it degrades (k=100 ≈ |F|) — pin the adaptive large-k skip off
    // so the row does not silently measure the exhaustive path instead.
    pruned_options.prune_skip_ratio = 2.0;
    pruned_options.tree.beta = env.DefaultBeta();
    pruned_options.tree.model = model;
    ShardedEngine pruned(users, routes, pruned_options);
    ShardedEngineOptions exhaustive_options = pruned_options;
    exhaustive_options.prune_topk = false;
    ShardedEngine exhaustive(users, routes, exhaustive_options);
    for (const size_t k : {1u, 10u, 100u}) {
      PruneResult r;
      r.shards = shards;
      r.k = k;
      r.total_facilities = static_cast<uint64_t>(routes.size()) * shards;
      const tq::runtime::MetricsView m0 = pruned.metrics().Read();
      r.pruned_ms = 1e3 * tq::bench::TimeAvgSeconds(prune_reps, [&]() {
        (void)pruned.Submit(tq::runtime::QueryRequest::TopK(k)).get();
      });
      const tq::runtime::MetricsView m1 = pruned.metrics().Read();
      r.facilities_evaluated =
          (m1.facilities_evaluated - m0.facilities_evaluated) / prune_reps;
      r.evaluated_fraction = static_cast<double>(r.facilities_evaluated) /
                             static_cast<double>(r.total_facilities);
      r.exhaustive_ms = 1e3 * tq::bench::TimeAvgSeconds(prune_reps, [&]() {
        (void)exhaustive.Submit(tq::runtime::QueryRequest::TopK(k)).get();
      });
      prune_results.push_back(r);
      char label[48];
      std::snprintf(label, sizeof(label), "shards=%zu,k=%zu", shards, k);
      tq::bench::PrintTimeRow(label,
                              {"eval_frac", "pruned_ms", "exhaust_ms"},
                              {r.evaluated_fraction, r.pruned_ms,
                               r.exhaustive_ms});
    }
  }

  std::printf("# json: {\"bench\":\"runtime_topk_prune\",\"preset\":\"nyf\","
              "\"users\":%zu,\"facilities\":%zu,\"results\":[",
              users.size(), routes.size());
  for (size_t i = 0; i < prune_results.size(); ++i) {
    const PruneResult& r = prune_results[i];
    std::printf(
        "%s{\"shards\":%zu,\"k\":%zu,\"facilities_evaluated\":%llu,"
        "\"total_facilities\":%llu,\"evaluated_fraction\":%.4f,"
        "\"pruned_ms\":%.3f,\"exhaustive_ms\":%.3f}",
        i == 0 ? "" : ",", r.shards, r.k,
        static_cast<unsigned long long>(r.facilities_evaluated),
        static_cast<unsigned long long>(r.total_facilities),
        r.evaluated_fraction, r.pruned_ms, r.exhaustive_ms);
  }
  std::printf("]}\n");
  return 0;
}
