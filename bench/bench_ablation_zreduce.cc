// Ablation: the pruning funnel of the three methods on one default query
// workload — how many entries each stage touches, and what the zReduce
// z-cell filter contributes on top of the q-node hierarchy.
//
// Rows: BL (quadtree range gather), TQ(B) plain scan, TQ(B)+MBR precheck
// (optional entry-level rejection), TQ(Z) zReduce.
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  const TrajectorySet users = presets::NytTrips(env.DefaultUsers());
  const TrajectorySet facs = presets::NyBusRoutes(16, env.DefaultStops());
  const FacilityCatalog catalog(&facs, model.psi);
  const ServiceEvaluator eval(&users, model);
  std::printf("Ablation: pruning funnel (users=%zu, %zu facilities)\n",
              users.size(), catalog.size());

  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 128);
  pq.InsertAll(users);

  TQTreeOptions opt;
  opt.beta = env.DefaultBeta();
  opt.model = model;
  opt.variant = IndexVariant::kBasic;
  TQTree tq_basic(&users, opt);
  opt.basic_entry_mbr_precheck = true;
  TQTree tq_basic_pre(&users, opt);
  opt.basic_entry_mbr_precheck = false;
  opt.variant = IndexVariant::kZOrder;
  TQTree tq_z(&users, opt);

  Banner("entries scanned / exact checks / seconds per facility (averaged)");
  std::printf("%-16s %14s %14s %12s\n", "method", "entries_scanned",
              "exact_checks", "seconds");
  const size_t nf = catalog.size();
  double sink = 0.0;

  auto report = [&](const char* name, QueryStats stats, double seconds) {
    std::printf("%-16s %14.0f %14.0f %12.6f\n", name,
                static_cast<double>(stats.entries_scanned) /
                    static_cast<double>(nf),
                static_cast<double>(stats.exact_checks) /
                    static_cast<double>(nf),
                seconds);
    std::printf("# csv:%s,scanned=%zu,exact=%zu,sec=%.9f\n", name,
                stats.entries_scanned / nf, stats.exact_checks / nf,
                seconds);
  };

  {
    QueryStats stats;
    const double s = TimeAvgSeconds(env.reps, [&] {
                       for (uint32_t f = 0; f < nf; ++f) {
                         sink += EvaluateServiceBaseline(
                             pq, eval, catalog.grid(f), &stats);
                       }
                     }) /
                     static_cast<double>(nf);
    stats.entries_scanned /= env.reps;
    stats.exact_checks /= env.reps;
    report("BL", stats, s);
  }
  {
    // Stronger-than-paper baseline: per-stop disk gather.
    QueryStats stats;
    const double s = TimeAvgSeconds(env.reps, [&] {
                       for (uint32_t f = 0; f < nf; ++f) {
                         sink += EvaluateServiceBaselineDisks(
                             pq, eval, catalog.grid(f), &stats);
                       }
                     }) /
                     static_cast<double>(nf);
    stats.entries_scanned /= env.reps;
    stats.exact_checks /= env.reps;
    report("BL(disks)", stats, s);
  }
  {
    // The same EMBR-gather baseline on an STR R-tree (§VII index family).
    const PointRTree rt = PointRTree::FromTrajectories(users);
    QueryStats stats;
    const double s = TimeAvgSeconds(env.reps, [&] {
                       for (uint32_t f = 0; f < nf; ++f) {
                         sink += EvaluateServiceBaselineRTree(
                             rt, eval, catalog.grid(f), &stats);
                       }
                     }) /
                     static_cast<double>(nf);
    stats.entries_scanned /= env.reps;
    stats.exact_checks /= env.reps;
    report("BL(rtree)", stats, s);
  }
  auto run_tree = [&](const char* name, TQTree* tree) {
    QueryStats stats;
    const double s = TimeAvgSeconds(env.reps, [&] {
                       for (uint32_t f = 0; f < nf; ++f) {
                         sink += EvaluateServiceTQ(tree, eval,
                                                   catalog.grid(f), &stats);
                       }
                     }) /
                     static_cast<double>(nf);
    stats.entries_scanned /= env.reps;
    stats.exact_checks /= env.reps;
    report(name, stats, s);
  };
  run_tree("TQ(B)", &tq_basic);
  run_tree("TQ(B)+precheck", &tq_basic_pre);
  run_tree("TQ(Z)", &tq_z);
  if (sink < 0) std::printf("impossible\n");
  return 0;
}
