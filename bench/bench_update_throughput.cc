// §III-C dynamic maintenance: insert/remove throughput of the TQ-tree at
// different index sizes, and the cost of the first query after churn (lazy
// z-index rebuilds). The paper claims O(h) updates; this quantifies them.
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  std::printf("TQ-tree update throughput (scale=%.3f)\n", env.scale);
  Banner("updates/sec and post-churn query cost vs index size");
  std::printf("%-12s %14s %14s %16s %16s\n", "users", "inserts/s",
              "removes/s", "query_clean_s", "query_churned_s");

  for (const size_t n : presets::NytUserSweep(env.scale)) {
    const TrajectorySet users = presets::NytTrips(n);
    const TrajectorySet facs = presets::NyBusRoutes(8, env.DefaultStops());
    const FacilityCatalog catalog(&facs, model.psi);
    const ServiceEvaluator eval(&users, model);
    TQTreeOptions opt;
    opt.beta = env.DefaultBeta();
    opt.model = model;
    TQTree tree(&users, opt);

    // Clean query cost (z-indexes warm).
    double sink = 0.0;
    const double q_clean = TimeAvgSeconds(env.reps, [&] {
                             for (uint32_t f = 0; f < catalog.size(); ++f) {
                               sink += EvaluateServiceTQ(&tree, eval,
                                                         catalog.grid(f));
                             }
                           }) /
                           static_cast<double>(catalog.size());

    // Churn 10% of the data.
    const size_t churn = std::max<size_t>(1, n / 10);
    Timer t_rm;
    for (uint32_t u = 0; u < churn; ++u) tree.Remove(u);
    const double rm_s = t_rm.ElapsedSeconds();
    Timer t_in;
    for (uint32_t u = 0; u < churn; ++u) tree.Insert(u);
    const double in_s = t_in.ElapsedSeconds();

    // First query after churn pays the lazy z-index rebuilds.
    Timer t_q;
    for (uint32_t f = 0; f < catalog.size(); ++f) {
      sink += EvaluateServiceTQ(&tree, eval, catalog.grid(f));
    }
    const double q_churned = t_q.ElapsedSeconds() /
                             static_cast<double>(catalog.size());

    std::printf("%-12zu %14.0f %14.0f %16.6f %16.6f\n", n,
                static_cast<double>(churn) / in_s,
                static_cast<double>(churn) / rm_s, q_clean, q_churned);
    std::printf("# csv:n=%zu,ins_per_s=%.0f,rm_per_s=%.0f,clean=%.9f,"
                "churned=%.9f\n",
                n, static_cast<double>(churn) / in_s,
                static_cast<double>(churn) / rm_s, q_clean, q_churned);
    if (sink < 0) std::printf("impossible\n");
  }
  return 0;
}
