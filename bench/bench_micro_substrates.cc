// Substrate micro-benchmarks (google-benchmark): the primitive operations
// whose costs the index-level results decompose into.
//
// Besides the google-benchmark table, the binary ends with one
// "# json: {"bench":"kernel_micro",...}" line measuring each vectorized
// kernel against its in-binary scalar reference (same pairs the agreement
// suite holds bit-identical). CI's kernel-regression gate parses that line:
// it fails on a ≥20% per-kernel slowdown against the committed baseline, and
// the AVX2 cell additionally asserts the ≥2× speedup acceptance bar.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <unordered_map>

#include "common/rng.h"
#include "geom/distance.h"
#include "common/simd.h"
#include "common/timer.h"
#include "datagen/presets.h"
#include "quadtree/point_quadtree.h"
#include "service/evaluator.h"
#include "service/stop_grid.h"
#include "tqtree/aggregates.h"
#include "tqtree/tq_tree.h"
#include "zorder/cell_tree.h"
#include "zorder/zid.h"

namespace tq {
namespace {

void BM_MortonKey(benchmark::State& state) {
  const Rect w = Rect::Of(0, 0, 40000, 40000);
  Rng rng(1);
  std::vector<Point> pts;
  for (int i = 0; i < 1024; ++i) {
    pts.push_back({rng.NextUniform(0, 40000), rng.NextUniform(0, 40000)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonKey(w, pts[i++ & 1023]));
  }
}
BENCHMARK(BM_MortonKey);

void BM_CellTreeLocate(benchmark::State& state) {
  const Rect w = Rect::Of(0, 0, 40000, 40000);
  Rng rng(2);
  std::vector<Point> pts;
  for (int i = 0; i < 100000; ++i) {
    pts.push_back({rng.NextGaussian(20000, 4000),
                   rng.NextGaussian(20000, 4000)});
  }
  const CellTree tree(w, pts, 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Locate(pts[i++ % pts.size()]));
  }
}
BENCHMARK(BM_CellTreeLocate);

void BM_CellTreeCoverRanges(benchmark::State& state) {
  const Rect w = Rect::Of(0, 0, 40000, 40000);
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 100000; ++i) {
    pts.push_back({rng.NextGaussian(20000, 4000),
                   rng.NextGaussian(20000, 4000)});
  }
  const CellTree tree(w, pts, 64);
  const Rect query = Rect::Of(18000, 18000, 22000, 22000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.CoverRanges(query));
  }
}
BENCHMARK(BM_CellTreeCoverRanges);

// Bench-local replica of the PRE-vectorization StopGrid (the growth seed's
// implementation, verbatim modulo naming): unordered_map cell buckets, one
// hash find per 3×3 probe cell, scalar distance loop. This is the honest
// "before" of the kernel table — the per-kernel speedups CI asserts are
// measured against it, in the same binary on the same workload.
class SeedStopGrid {
 public:
  SeedStopGrid(std::span<const Point> stops, double psi)
      : stops_(stops.begin(), stops.end()), psi_(psi), inv_cell_(1.0 / psi) {
    embr_ = Rect::BoundingBox(stops_).Expanded(psi_);
    cells_.reserve(stops_.size() * 2);
    for (uint32_t i = 0; i < stops_.size(); ++i) {
      cells_[CellKey(stops_[i].x, stops_[i].y)].push_back(i);
    }
  }

  bool Serves(const Point& p) const {
    if (!embr_.Contains(p)) return false;
    const double psi2 = psi_ * psi_;
    const auto cx = static_cast<int64_t>(std::floor(p.x * inv_cell_));
    const auto cy = static_cast<int64_t>(std::floor(p.y * inv_cell_));
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        const int64_t key = ((cx + dx) << 32) ^ ((cy + dy) & 0xFFFFFFFFLL);
        const auto it = cells_.find(key);
        if (it == cells_.end()) continue;
        for (const uint32_t si : it->second) {
          if (DistanceSquared(p, stops_[si]) <= psi2) return true;
        }
      }
    }
    return false;
  }

 private:
  int64_t CellKey(double x, double y) const {
    const auto cx = static_cast<int64_t>(std::floor(x * inv_cell_));
    const auto cy = static_cast<int64_t>(std::floor(y * inv_cell_));
    return (cx << 32) ^ (cy & 0xFFFFFFFFLL);
  }

  std::vector<Point> stops_;
  double psi_;
  double inv_cell_;
  Rect embr_;
  std::unordered_map<int64_t, std::vector<uint32_t>> cells_;
};

// Shared probe workload for the StopGrid kernel pair: points concentrated in
// the route's serving corridor (uniform over the EMBR) — the regime the
// kernels exist for. Candidates that reach the exact check have already
// passed index pruning, so they cluster near the facility; far-away points
// die in the 4-wide rect prefilter and cost almost nothing either way.
struct ServesWorkload {
  TrajectorySet routes = presets::NyBusRoutes(1, 64);
  StopGrid grid{routes.points(0), 200.0};
  SeedStopGrid seed_grid{routes.points(0), 200.0};
  std::vector<Point> probes;

  ServesWorkload() {
    Rng rng(4);
    const Rect embr = grid.embr();
    for (int i = 0; i < 4096; ++i) {
      probes.push_back({rng.NextUniform(embr.min_x, embr.max_x),
                        rng.NextUniform(embr.min_y, embr.max_y)});
    }
  }
};

void BM_StopGridServesScalar(benchmark::State& state) {
  const ServesWorkload w;
  for (auto _ : state) {
    size_t served = 0;
    for (const Point& p : w.probes) served += w.grid.ServesScalar(p);
    benchmark::DoNotOptimize(served);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.probes.size()));
}
BENCHMARK(BM_StopGridServesScalar);

void BM_StopGridServesBatch(benchmark::State& state) {
  const ServesWorkload w;
  std::vector<uint64_t> mask((w.probes.size() + 63) / 64);
  for (auto _ : state) {
    w.grid.ServesBatch(w.probes, mask.data());
    benchmark::DoNotOptimize(mask.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.probes.size()));
}
BENCHMARK(BM_StopGridServesBatch);

// Exact service evaluation per scenario, NYF users vs one route grid — the
// inner loop of every query algorithm. Scenario 1 = endpoint probes,
// 2 = point count, 3 = served length.
template <int kScenario>
void BM_EvaluateScenario(benchmark::State& state) {
  const TrajectorySet users = presets::NyfCheckins(2000);
  const TrajectorySet routes = presets::NyBusRoutes(1, 64);
  const ServiceModel model = kScenario == 1   ? ServiceModel::Endpoints(400.0)
                             : kScenario == 2 ? ServiceModel::PointCount(400.0)
                                              : ServiceModel::Length(400.0);
  const ServiceEvaluator eval(&users, model);
  const StopGrid grid(routes.points(0), model.psi);
  for (auto _ : state) {
    double total = 0.0;
    for (uint32_t u = 0; u < users.size(); ++u) {
      total += eval.Evaluate(u, grid);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(users.size()));
}
void BM_EvaluateScenario1(benchmark::State& state) {
  BM_EvaluateScenario<1>(state);
}
void BM_EvaluateScenario2(benchmark::State& state) {
  BM_EvaluateScenario<2>(state);
}
void BM_EvaluateScenario3(benchmark::State& state) {
  BM_EvaluateScenario<3>(state);
}
BENCHMARK(BM_EvaluateScenario1);
BENCHMARK(BM_EvaluateScenario2);
BENCHMARK(BM_EvaluateScenario3);

// The cache-resident bound sweep: TQTree::UpperBound over a frozen NYF tree
// (SoA arena + wide reachability kernels) for a rotation of facility grids.
void BM_ZIndexBucketScan(benchmark::State& state) {
  const TrajectorySet users = presets::NyfCheckins(20000);
  const TrajectorySet routes = presets::NyBusRoutes(16, 32);
  TQTreeOptions opt;
  opt.beta = 64;
  opt.model = ServiceModel::PointCount(400.0);
  TQTree tree(&users, opt);
  tree.BuildAllZIndexes();
  std::vector<StopGrid> grids;
  for (uint32_t f = 0; f < routes.size(); ++f) {
    grids.emplace_back(routes.points(f), opt.model.psi);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.UpperBound(grids[i++ % grids.size()]));
  }
}
BENCHMARK(BM_ZIndexBucketScan);

void BM_PointQuadtreeDiskQuery(benchmark::State& state) {
  const TrajectorySet users = presets::NytTrips(50000);
  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 128);
  pq.InsertAll(users);
  Rng rng(5);
  std::vector<Point> centers;
  for (int i = 0; i < 256; ++i) {
    centers.push_back({rng.NextUniform(0, 40000), rng.NextUniform(0, 40000)});
  }
  size_t i = 0;
  for (auto _ : state) {
    size_t count = 0;
    pq.ForEachInDisk(centers[i++ & 255], 200.0,
                     [&count](const PointEntry&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PointQuadtreeDiskQuery);

void BM_TQTreeInsert(benchmark::State& state) {
  const TrajectorySet users = presets::NytTrips(50000);
  TQTreeOptions opt;
  opt.beta = 64;
  opt.model = ServiceModel::Endpoints(200.0);
  TQTree tree(&users, opt);
  uint32_t u = 0;
  for (auto _ : state) {
    // Steady-state churn: remove + re-insert keeps the tree size constant.
    tree.Remove(u % users.size());
    tree.Insert(u % users.size());
    ++u;
  }
}
BENCHMARK(BM_TQTreeInsert);

void BM_ZIndexRebuild(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const TrajectorySet users = presets::NytTrips(n);
  std::vector<TrajEntry> entries;
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  for (uint32_t i = 0; i < users.size(); ++i) {
    entries.push_back(MakeWholeEntry(users, i, model));
  }
  const Rect w = users.BoundingBox().Expanded(1.0);
  for (auto _ : state) {
    const ZIndex zi(w, entries, 64, ZPruneMode::kStartEnd);
    benchmark::DoNotOptimize(zi.num_buckets());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ZIndexRebuild)->Arg(1000)->Arg(10000);

// ------------------------------------------------------------------------
// kernel_micro series: fixed-workload wall-clock timing of each vectorized
// kernel against its scalar reference, emitted as one machine-readable line.
// Deliberately independent of google-benchmark's reporter so the CI gate
// parses a stable format (same "# json:" convention as the other binaries).

// Best-of-3 timing of `fn`, each rep running `fn` until ≥ 50 ms elapsed.
// Returns nanoseconds per work unit.
template <typename Fn>
double TimeNsPerUnit(size_t units_per_call, Fn&& fn) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    fn();  // warm caches, fault pages
    size_t calls = 0;
    Timer t;
    do {
      fn();
      ++calls;
    } while (t.ElapsedSeconds() < 0.05);
    const double ns =
        t.ElapsedSeconds() * 1e9 / (static_cast<double>(calls) * units_per_call);
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

struct KernelRow {
  const char* kernel;
  double seed_ns;    // pre-vectorization implementation (bench-local replica);
                     // 0 when no faithful seed replica exists for the kernel
  double scalar_ns;  // retained scalar reference on the NEW data layout
  double vector_ns;  // active (vectorized or forced-scalar) path
};

// Seed-replica evaluation loop: the pre-PR ServiceEvaluator bodies called
// grid.Serves(p) per point on the unordered_map grid.
double SeedEvaluate(const SeedStopGrid& grid, const TrajectorySet& users,
                    uint32_t user, const ServiceModel& model) {
  const auto pts = users.points(user);
  switch (model.scenario) {
    case Scenario::kEndpoints:
      return grid.Serves(pts.front()) && grid.Serves(pts.back()) ? 1.0 : 0.0;
    case Scenario::kPointCount: {
      size_t count = 0;
      for (const Point& p : pts) count += grid.Serves(p);
      const auto n = static_cast<double>(pts.size());
      return model.normalization == Normalization::kPerUser
                 ? static_cast<double>(count) / n
                 : static_cast<double>(count);
    }
    case Scenario::kLength: {
      double served = 0.0;
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        if (grid.Serves(pts[i]) && grid.Serves(pts[i + 1])) {
          served += Distance(pts[i], pts[i + 1]);
        }
      }
      if (model.normalization == Normalization::kPerUser) {
        const double len = users.length(user);
        return len > 0.0 ? served / len : 0.0;
      }
      return served;
    }
  }
  return 0.0;
}

void EmitKernelMicroJson() {
  std::vector<KernelRow> rows;

  {  // StopGrid point-serve: seed map-probe vs scalar-reference vs batch.
    const ServesWorkload w;
    std::vector<uint64_t> mask((w.probes.size() + 63) / 64);
    volatile size_t sink = 0;
    const double seed_ns = TimeNsPerUnit(w.probes.size(), [&] {
      size_t served = 0;
      for (const Point& p : w.probes) served += w.seed_grid.Serves(p);
      sink = served;
    });
    const double scalar_ns = TimeNsPerUnit(w.probes.size(), [&] {
      size_t served = 0;
      for (const Point& p : w.probes) served += w.grid.ServesScalar(p);
      sink = served;
    });
    const double vector_ns = TimeNsPerUnit(w.probes.size(), [&] {
      w.grid.ServesBatch(w.probes, mask.data());
      sink = mask[0];
    });
    rows.push_back({"stopgrid_serves", seed_ns, scalar_ns, vector_ns});
  }

  {  // Exact evaluation, all three scenarios over the same NYF users.
    const TrajectorySet users = presets::NyfCheckins(2000);
    const TrajectorySet routes = presets::NyBusRoutes(1, 64);
    const ServiceModel models[3] = {ServiceModel::Endpoints(400.0),
                                    ServiceModel::PointCount(400.0),
                                    ServiceModel::Length(400.0)};
    const char* names[3] = {"evaluate_s1", "evaluate_s2", "evaluate_s3"};
    volatile double sink = 0.0;
    for (int s = 0; s < 3; ++s) {
      const ServiceEvaluator eval(&users, models[s]);
      const StopGrid grid(routes.points(0), models[s].psi);
      const SeedStopGrid seed_grid(routes.points(0), models[s].psi);
      const double seed_ns = TimeNsPerUnit(users.size(), [&] {
        double total = 0.0;
        for (uint32_t u = 0; u < users.size(); ++u) {
          total += SeedEvaluate(seed_grid, users, u, models[s]);
        }
        sink = total;
      });
      const double scalar_ns = TimeNsPerUnit(users.size(), [&] {
        double total = 0.0;
        for (uint32_t u = 0; u < users.size(); ++u) {
          total += eval.EvaluateScalar(u, grid);
        }
        sink = total;
      });
      const double vector_ns = TimeNsPerUnit(users.size(), [&] {
        double total = 0.0;
        for (uint32_t u = 0; u < users.size(); ++u) {
          total += eval.Evaluate(u, grid);
        }
        sink = total;
      });
      rows.push_back({names[s], seed_ns, scalar_ns, vector_ns});
    }
  }

  {  // Bound sweep: pages + scalar kernels vs SoA arena + wide kernels.
    const TrajectorySet users = presets::NyfCheckins(20000);
    const TrajectorySet routes = presets::NyBusRoutes(16, 32);
    TQTreeOptions opt;
    opt.beta = 64;
    opt.model = ServiceModel::PointCount(400.0);
    TQTree tree(&users, opt);
    tree.BuildAllZIndexes();
    std::vector<StopGrid> grids;
    for (uint32_t f = 0; f < routes.size(); ++f) {
      grids.emplace_back(routes.points(f), opt.model.psi);
    }
    volatile double sink = 0.0;
    const double scalar_ns = TimeNsPerUnit(grids.size(), [&] {
      double total = 0.0;
      for (const StopGrid& g : grids) total += tree.UpperBoundScalarReference(g);
      sink = total;
    });
    const double vector_ns = TimeNsPerUnit(grids.size(), [&] {
      double total = 0.0;
      for (const StopGrid& g : grids) total += tree.UpperBound(g);
      sink = total;
    });
    rows.push_back({"zindex_bucket_scan", 0.0, scalar_ns, vector_ns});
  }

#if defined(TQ_SIMD_FORCE_SCALAR)
  const char* simd_path = "scalar";
#else
  const char* simd_path = "vector";
#endif
  std::printf("\nkernel_micro (ns/unit, best of 3; active path: %s)\n",
              simd_path);
  std::printf("  %-20s %10s %10s %10s %9s %9s\n", "kernel", "seed", "scalar",
              "active", "vs_seed", "vs_scalar");
  for (const KernelRow& r : rows) {
    std::printf("  %-20s %10.2f %10.2f %10.2f %8.2fx %8.2fx\n", r.kernel,
                r.seed_ns, r.scalar_ns, r.vector_ns,
                r.vector_ns > 0 ? r.seed_ns / r.vector_ns : 0.0,
                r.vector_ns > 0 ? r.scalar_ns / r.vector_ns : 0.0);
  }
  std::printf("# json: {\"bench\":\"kernel_micro\",\"simd\":\"%s\","
              "\"kernels\":[",
              simd_path);
  for (size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    std::printf("%s{\"kernel\":\"%s\",\"seed_ns\":%.3f,\"scalar_ns\":%.3f,"
                "\"vector_ns\":%.3f,\"speedup_vs_seed\":%.3f,"
                "\"speedup_vs_scalar\":%.3f}",
                i == 0 ? "" : ",", r.kernel, r.seed_ns, r.scalar_ns,
                r.vector_ns, r.vector_ns > 0 ? r.seed_ns / r.vector_ns : 0.0,
                r.vector_ns > 0 ? r.scalar_ns / r.vector_ns : 0.0);
  }
  std::printf("]}\n");
}

}  // namespace
}  // namespace tq

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  tq::EmitKernelMicroJson();
  return 0;
}
