// Substrate micro-benchmarks (google-benchmark): the primitive operations
// whose costs the index-level results decompose into.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "datagen/presets.h"
#include "quadtree/point_quadtree.h"
#include "service/stop_grid.h"
#include "tqtree/aggregates.h"
#include "tqtree/tq_tree.h"
#include "zorder/cell_tree.h"
#include "zorder/zid.h"

namespace tq {
namespace {

void BM_MortonKey(benchmark::State& state) {
  const Rect w = Rect::Of(0, 0, 40000, 40000);
  Rng rng(1);
  std::vector<Point> pts;
  for (int i = 0; i < 1024; ++i) {
    pts.push_back({rng.NextUniform(0, 40000), rng.NextUniform(0, 40000)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonKey(w, pts[i++ & 1023]));
  }
}
BENCHMARK(BM_MortonKey);

void BM_CellTreeLocate(benchmark::State& state) {
  const Rect w = Rect::Of(0, 0, 40000, 40000);
  Rng rng(2);
  std::vector<Point> pts;
  for (int i = 0; i < 100000; ++i) {
    pts.push_back({rng.NextGaussian(20000, 4000),
                   rng.NextGaussian(20000, 4000)});
  }
  const CellTree tree(w, pts, 64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Locate(pts[i++ % pts.size()]));
  }
}
BENCHMARK(BM_CellTreeLocate);

void BM_CellTreeCoverRanges(benchmark::State& state) {
  const Rect w = Rect::Of(0, 0, 40000, 40000);
  Rng rng(3);
  std::vector<Point> pts;
  for (int i = 0; i < 100000; ++i) {
    pts.push_back({rng.NextGaussian(20000, 4000),
                   rng.NextGaussian(20000, 4000)});
  }
  const CellTree tree(w, pts, 64);
  const Rect query = Rect::Of(18000, 18000, 22000, 22000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.CoverRanges(query));
  }
}
BENCHMARK(BM_CellTreeCoverRanges);

void BM_StopGridServes(benchmark::State& state) {
  const TrajectorySet routes = presets::NyBusRoutes(1, 64);
  const StopGrid grid(routes.points(0), 200.0);
  Rng rng(4);
  std::vector<Point> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back({rng.NextUniform(0, 40000), rng.NextUniform(0, 40000)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid.Serves(probes[i++ & 1023]));
  }
}
BENCHMARK(BM_StopGridServes);

void BM_PointQuadtreeDiskQuery(benchmark::State& state) {
  const TrajectorySet users = presets::NytTrips(50000);
  PointQuadtree pq(users.BoundingBox().Expanded(1.0), 128);
  pq.InsertAll(users);
  Rng rng(5);
  std::vector<Point> centers;
  for (int i = 0; i < 256; ++i) {
    centers.push_back({rng.NextUniform(0, 40000), rng.NextUniform(0, 40000)});
  }
  size_t i = 0;
  for (auto _ : state) {
    size_t count = 0;
    pq.ForEachInDisk(centers[i++ & 255], 200.0,
                     [&count](const PointEntry&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_PointQuadtreeDiskQuery);

void BM_TQTreeInsert(benchmark::State& state) {
  const TrajectorySet users = presets::NytTrips(50000);
  TQTreeOptions opt;
  opt.beta = 64;
  opt.model = ServiceModel::Endpoints(200.0);
  TQTree tree(&users, opt);
  uint32_t u = 0;
  for (auto _ : state) {
    // Steady-state churn: remove + re-insert keeps the tree size constant.
    tree.Remove(u % users.size());
    tree.Insert(u % users.size());
    ++u;
  }
}
BENCHMARK(BM_TQTreeInsert);

void BM_ZIndexRebuild(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const TrajectorySet users = presets::NytTrips(n);
  std::vector<TrajEntry> entries;
  const ServiceModel model = ServiceModel::Endpoints(200.0);
  for (uint32_t i = 0; i < users.size(); ++i) {
    entries.push_back(MakeWholeEntry(users, i, model));
  }
  const Rect w = users.BoundingBox().Expanded(1.0);
  for (auto _ : state) {
    const ZIndex zi(w, entries, 64, ZPruneMode::kStartEnd);
    benchmark::DoNotOptimize(zi.num_buckets());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ZIndexRebuild)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace tq

BENCHMARK_MAIN();
