// Durability subsystem cost model (src/storage): what a WAL append adds to
// the publish path under each --wal-sync policy, what a checkpoint costs at
// workload size, and how fast a SIGKILL'd server is back — split into
// checkpoint-load and WAL-replay components, since the replay share is what
// the checkpoint interval tunes away. Emits "# json: recovery_time"; CI runs
// it as a liveness gate in the bench smoke step.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/sharded_engine.h"
#include "storage/wal.h"

using namespace tq;         // NOLINT(build/namespaces)
using namespace tq::bench;  // NOLINT(build/namespaces)

namespace {

std::string FreshDir(const std::string& name) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("tq_bench_recovery_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

runtime::ShardedEngineOptions Options(const ServiceModel& model,
                                      const std::string& data_dir,
                                      storage::WalSync sync) {
  runtime::ShardedEngineOptions o;
  o.num_shards = 4;
  o.num_threads = 4;
  o.tree.beta = 64;
  o.tree.model = model;
  o.durability.data_dir = data_dir;
  o.durability.wal_sync = sync;
  return o;
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const size_t num_users = std::max<size_t>(2000, env.DefaultUsers());
  const TrajectorySet users = presets::NytTrips(num_users);
  const TrajectorySet facs = presets::NyBusRoutes(8, env.DefaultStops());
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());

  // A fixed churn tape, replayed identically through every configuration:
  // re-insert existing trajectories (same geometry, new ids) and remove the
  // oldest — the WAL cost depends on bytes, not novelty.
  const size_t num_batches = 64;
  const size_t batch_inserts = 16;
  std::vector<runtime::UpdateBatch> batches;
  uint32_t next_user = 0;
  for (size_t b = 0; b < num_batches; ++b) {
    runtime::UpdateBatch batch;
    for (size_t i = 0; i < batch_inserts; ++i) {
      const auto pts = users.points(next_user % users.size());
      batch.inserts.emplace_back(pts.begin(), pts.end());
      ++next_user;
    }
    batch.removes = {static_cast<uint32_t>(b)};
    batches.push_back(std::move(batch));
  }

  std::printf("durability / recovery cost (scale=%.3f, %zu users, "
              "%zu batches x %zu inserts)\n",
              env.scale, num_users, num_batches, batch_inserts);
  Banner("publish overhead per --wal-sync policy");
  std::printf("%-12s %14s %14s\n", "wal_sync", "batches/s", "vs none");

  auto run_batches = [&](runtime::ShardedEngine* engine) {
    Timer t;
    for (const runtime::UpdateBatch& batch : batches) {
      engine->ApplyUpdates(batch);
    }
    return t.ElapsedSeconds();
  };

  double rate_none = 0.0;
  {
    runtime::ShardedEngine engine(
        users, facs, Options(model, "", storage::WalSync::kAlways));
    rate_none = static_cast<double>(num_batches) / run_batches(&engine);
    std::printf("%-12s %14.1f %14s\n", "none", rate_none, "1.00x");
  }
  struct SyncRow {
    const char* name;
    storage::WalSync sync;
    double rate = 0.0;
  };
  std::vector<SyncRow> rows = {{"off", storage::WalSync::kOff},
                               {"batch", storage::WalSync::kBatch},
                               {"always", storage::WalSync::kAlways}};
  for (SyncRow& row : rows) {
    const std::string dir = FreshDir(row.name);
    runtime::ShardedEngine engine(users, facs, Options(model, dir, row.sync));
    row.rate = static_cast<double>(num_batches) / run_batches(&engine);
    std::printf("%-12s %14.1f %13.2fx\n", row.name, row.rate,
                rate_none / row.rate);
  }

  // Checkpoint + recovery, measured on two data dirs: one checkpointed
  // after the churn (recovery = pure checkpoint load) and one left WAL-only
  // (recovery = initial-checkpoint load + full replay).
  Banner("checkpoint and recovery");
  const std::string dir_ck = FreshDir("checkpointed");
  const std::string dir_wal = FreshDir("wal_only");
  double checkpoint_s = 0.0;
  {
    runtime::ShardedEngine engine(
        users, facs, Options(model, dir_ck, storage::WalSync::kOff));
    run_batches(&engine);
    Timer t;
    if (!engine.Checkpoint().ok()) {
      std::fprintf(stderr, "checkpoint failed\n");
      return 1;
    }
    checkpoint_s = t.ElapsedSeconds();
  }
  {
    runtime::ShardedEngine engine(
        users, facs, Options(model, dir_wal, storage::WalSync::kOff));
    run_batches(&engine);
  }

  auto recover = [&](const std::string& dir, double* seconds,
                     storage::RecoveryInfo* info) {
    Timer t;
    auto engine = runtime::ShardedEngine::Recover(
        Options(model, dir, storage::WalSync::kOff));
    if (!engine.ok()) {
      std::fprintf(stderr, "recover(%s): %s\n", dir.c_str(),
                   engine.status().ToString().c_str());
      std::exit(1);
    }
    *seconds = t.ElapsedSeconds();
    *info = (*engine)->recovery_info();
    // Liveness: the recovered engine answers queries.
    const runtime::QueryResponse r =
        (*engine)->Submit(runtime::QueryRequest::ServiceValue(0)).get();
    if (!r.status.ok()) {
      std::fprintf(stderr, "post-recovery query failed\n");
      std::exit(1);
    }
  };

  double recover_ck_s = 0.0, recover_wal_s = 0.0;
  storage::RecoveryInfo info_ck, info_wal;
  recover(dir_ck, &recover_ck_s, &info_ck);
  recover(dir_wal, &recover_wal_s, &info_wal);
  const double replay_us_per_batch =
      info_wal.replayed_batches > 0
          ? (recover_wal_s - recover_ck_s) * 1e6 /
                static_cast<double>(info_wal.replayed_batches)
          : 0.0;

  std::printf("%-28s %12.4f s\n", "checkpoint (stream+trim+compact)",
              checkpoint_s);
  std::printf("%-28s %12.4f s  (replayed %llu)\n", "recover, checkpointed",
              recover_ck_s,
              static_cast<unsigned long long>(info_ck.replayed_batches));
  std::printf("%-28s %12.4f s  (replayed %llu)\n", "recover, WAL-only",
              recover_wal_s,
              static_cast<unsigned long long>(info_wal.replayed_batches));
  std::printf("%-28s %12.2f us/batch\n", "replay marginal cost",
              replay_us_per_batch);

  std::printf(
      "# json: {\"bench\":\"recovery_time\",\"users\":%zu,\"batches\":%zu,"
      "\"publish_batches_per_sec\":{\"none\":%.1f,\"off\":%.1f,"
      "\"batch\":%.1f,\"always\":%.1f},\"checkpoint_s\":%.4f,"
      "\"recover_checkpointed_s\":%.4f,\"recover_wal_only_s\":%.4f,"
      "\"replayed_batches\":%llu,\"replay_us_per_batch\":%.2f}\n",
      num_users, num_batches, rate_none, rows[0].rate, rows[1].rate,
      rows[2].rate, checkpoint_s, recover_ck_s, recover_wal_s,
      static_cast<unsigned long long>(info_wal.replayed_batches),
      replay_us_per_batch);

  std::filesystem::remove_all(dir_ck);
  std::filesystem::remove_all(dir_wal);
  for (const SyncRow& row : rows) {
    std::filesystem::remove_all(
        std::filesystem::temp_directory_path() /
        ("tq_bench_recovery_" + std::string(row.name)));
  }
  return 0;
}
