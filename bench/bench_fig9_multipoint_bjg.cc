// Figure 9: kMaxRRST on the Beijing Geolife-like multipoint dataset, using
// the segmented TQ-tree ("consider every pair of points as a single
// trajectory", §VI-B.3). (a) vs #stops; (b) vs #facilities.
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

namespace {

void MeasureRow(Workload* w, size_t k, const BenchEnv& env,
                const std::string& label) {
  double sink = 0.0;
  const double bl = TimeAvgSeconds(env.reps, [&] {
    sink += TopKFacilitiesBaseline(*w->bl_index, *w->catalog, *w->eval, k)
                .ranked[0]
                .value;
  });
  const double tb = TimeAvgSeconds(env.reps, [&] {
    sink += TopKFacilitiesTQ(w->tq_basic.get(), *w->catalog, *w->eval, k)
                .ranked[0]
                .value;
  });
  const double tz = TimeAvgSeconds(env.reps, [&] {
    sink += TopKFacilitiesTQ(w->tq_z.get(), *w->catalog, *w->eval, k)
                .ranked[0]
                .value;
  });
  PrintTimeRow(label, {"BL", "TQ_B", "TQ_Z"}, {bl, tb, tz});
  if (sink < 0) std::printf("impossible\n");
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  // BJG is small (30,266 full-scale); scale but keep a sensible floor.
  const auto num_traces =
      std::max<size_t>(2000, static_cast<size_t>(30266 * env.scale));
  const ServiceModel model = ServiceModel::PointCount(env.DefaultPsi());
  std::printf("Figure 9: BJG segmented kMaxRRST (traces=%zu reps=%zu)\n",
              num_traces, env.reps);

  Banner("Fig 9(a): time vs #stops");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  for (const size_t stops : {8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    Workload w = BuildWorkload(presets::BjgTraces(num_traces),
                               presets::BjBusRoutes(64, stops), model,
                               env.DefaultBeta(), TrajMode::kSegmented);
    MeasureRow(&w, env.DefaultK(), env, "S=" + std::to_string(stops));
  }

  Banner("Fig 9(b): time vs #facilities");
  PrintSeriesHeader({"BL", "TQ_B", "TQ_Z"});
  for (const size_t nf : {16u, 32u, 64u, 128u, 256u, 512u}) {
    Workload w = BuildWorkload(presets::BjgTraces(num_traces),
                               presets::BjBusRoutes(nf, env.DefaultStops()),
                               model, env.DefaultBeta(),
                               TrajMode::kSegmented);
    MeasureRow(&w, env.DefaultK(), env, "N=" + std::to_string(nf));
  }
  return 0;
}
