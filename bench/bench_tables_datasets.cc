// Tables I-III of the paper: dataset summaries and the parameter grid.
//
// Prints the synthetic stand-ins' statistics next to the paper's real
// dataset numbers so the substitution is auditable (DESIGN.md §3).
#include <cstdio>

#include "bench_util.h"
#include "traj/stats.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  std::printf("tqcover dataset tables (scale=%.3f%s)\n", env.scale,
              env.full ? ", FULL" : "");

  Banner("Table I: facility trajectory datasets (paper: NY 2024 routes / "
         "16999 stops; BJ 1842 / 21489)");
  {
    // Match the paper's per-route stop density (~8.4 and ~11.7 stops).
    const auto ny_routes = static_cast<size_t>(2024 * env.scale) + 1;
    const auto bj_routes = static_cast<size_t>(1842 * env.scale) + 1;
    const TrajectorySet ny = presets::NyBusRoutes(ny_routes, 8);
    const TrajectorySet bj = presets::BjBusRoutes(bj_routes, 12);
    std::printf("%s\n", ComputeStats(ny).ToString("NY-bus").c_str());
    std::printf("%s\n", ComputeStats(bj).ToString("BJ-bus").c_str());
  }

  Banner("Table II: user trajectory datasets (paper: NYT 1032637 "
         "point-to-point; NYF 212751 multipoint; BJG 30266 multipoint)");
  {
    const TrajectorySet nyt =
        presets::NytTrips(static_cast<size_t>(1032637 * env.scale));
    const TrajectorySet nyf =
        presets::NyfCheckins(static_cast<size_t>(212751 * env.scale));
    const TrajectorySet bjg =
        presets::BjgTraces(static_cast<size_t>(30266 * env.scale));
    std::printf("%s\n", ComputeStats(nyt).ToString("NYT").c_str());
    std::printf("%s\n", ComputeStats(nyf).ToString("NYF").c_str());
    std::printf("%s\n", ComputeStats(bjg).ToString("BJG").c_str());
  }

  Banner("Table III: parameters (defaults in use)");
  std::printf("Routes:        NY, BJ\n");
  std::printf("Datasets:      NYT, NYF, BJG\n");
  std::printf("# Trajectories sweep: ");
  for (const size_t n : presets::NytUserSweep(env.scale)) {
    std::printf("%zu ", n);
  }
  std::printf("\n# Stops (S):   8..512, default %zu\n", env.DefaultStops());
  std::printf("# Facil. (N):  8..512, default %zu\n",
              env.DefaultFacilities());
  std::printf("k:             4..32, default %zu\n", env.DefaultK());
  std::printf("psi:           %.0f m (paper default unstated; documented "
              "assumption)\n",
              env.DefaultPsi());
  std::printf("beta:          %zu\n", env.DefaultBeta());
  return 0;
}
