// Ablation: the node/bucket capacity β ("size of a memory block", §III).
// Sweeps β and reports TQ(Z) build time, tree shape, and per-facility
// service-value time — the trade-off the paper's β embodies.
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  const TrajectorySet users = presets::NytTrips(env.DefaultUsers());
  const TrajectorySet facs = presets::NyBusRoutes(16, env.DefaultStops());
  const FacilityCatalog catalog(&facs, model.psi);
  const ServiceEvaluator eval(&users, model);
  std::printf("Ablation: beta sweep (users=%zu)\n", users.size());
  Banner("build seconds / query seconds / tree shape vs beta");
  std::printf("%-10s %12s %12s   %s\n", "beta", "build_s", "query_s",
              "tree");
  double sink = 0.0;
  for (const size_t beta : {8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    TQTreeOptions opt;
    opt.beta = beta;
    opt.model = model;
    Timer build;
    TQTree tree(&users, opt);
    const double build_s = build.ElapsedSeconds();
    const double query_s =
        TimeAvgSeconds(env.reps, [&] {
          for (uint32_t f = 0; f < catalog.size(); ++f) {
            sink += EvaluateServiceTQ(&tree, eval, catalog.grid(f));
          }
        }) /
        static_cast<double>(catalog.size());
    std::printf("%-10zu %12.4f %12.6f   %s\n", beta, build_s, query_s,
                tree.ComputeStats().ToString().c_str());
    std::printf("# csv:beta=%zu,build=%.6f,query=%.9f\n", beta, build_s,
                query_s);
  }
  if (sink < 0) std::printf("impossible\n");
  return 0;
}
