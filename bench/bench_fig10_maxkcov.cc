// Figure 10: MaxkCovRST on NYT.
//   (a) time vs #users    (b) #users served vs #users
//   (c) time vs #facilities  (d) #users served vs #facilities
// Series: G-BL (straightforward greedy, baseline evaluation), G-TQ(B),
// G-TQ(Z) (two-step greedy), Gn-TQ(Z) (genetic, 20 iterations).
#include <cstdio>

#include "bench_util.h"
#include "cover/genetic.h"
#include "cover/greedy.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

namespace {

struct Row {
  double t_gbl, t_gtb, t_gtz, t_gn;
  size_t u_gbl, u_gtb, u_gtz, u_gn;
};

Row Measure(Workload* w, size_t k) {
  Row r{};
  {
    Timer t;
    const CoverResult res =
        GreedyCoverBaseline(*w->bl_index, *w->catalog, *w->eval, k);
    r.t_gbl = t.ElapsedSeconds();
    r.u_gbl = res.users_served;
  }
  {
    Timer t;
    const CoverResult res =
        GreedyCoverTQ(w->tq_basic.get(), *w->catalog, *w->eval, k);
    r.t_gtb = t.ElapsedSeconds();
    r.u_gtb = res.users_served;
  }
  {
    Timer t;
    const CoverResult res =
        GreedyCoverTQ(w->tq_z.get(), *w->catalog, *w->eval, k);
    r.t_gtz = t.ElapsedSeconds();
    r.u_gtz = res.users_served;
  }
  {
    Timer t;
    const CoverResult res =
        GeneticCoverTQ(w->tq_z.get(), *w->catalog, *w->eval, k);
    r.t_gn = t.ElapsedSeconds();
    r.u_gn = res.users_served;
  }
  return r;
}

void PrintRow(const std::string& label, const Row& r) {
  PrintTimeRow(label, {"G_BL", "G_TQ_B", "G_TQ_Z", "Gn_TQ_Z"},
               {r.t_gbl, r.t_gtb, r.t_gtz, r.t_gn});
  std::printf("%-14s served: G_BL=%zu G_TQ_B=%zu G_TQ_Z=%zu Gn_TQ_Z=%zu\n",
              "", r.u_gbl, r.u_gtb, r.u_gtz, r.u_gn);
  std::printf("# csv-served:%s,G_BL=%zu,G_TQ_B=%zu,G_TQ_Z=%zu,Gn_TQ_Z=%zu\n",
              label.c_str(), r.u_gbl, r.u_gtb, r.u_gtz, r.u_gn);
}

}  // namespace

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  std::printf("Figure 10: MaxkCovRST on NYT (scale=%.3f k=%zu)\n", env.scale,
              env.DefaultK());

  Banner("Fig 10(a,b): time and #users served vs #user trajectories");
  PrintSeriesHeader({"G_BL", "G_TQ_B", "G_TQ_Z", "Gn_TQ_Z"});
  {
    const std::vector<const char*> day_labels = {"0.5d", "1d", "2d", "3d"};
    const std::vector<size_t> sweep = presets::NytUserSweep(env.scale);
    for (size_t i = 0; i < sweep.size(); ++i) {
      Workload w = BuildWorkload(
          presets::NytTrips(sweep[i]),
          presets::NyBusRoutes(env.DefaultFacilities(), env.DefaultStops()),
          model, env.DefaultBeta());
      PrintRow(day_labels[i], Measure(&w, env.DefaultK()));
    }
  }

  Banner("Fig 10(c,d): time and #users served vs #facilities");
  PrintSeriesHeader({"G_BL", "G_TQ_B", "G_TQ_Z", "Gn_TQ_Z"});
  for (const size_t nf : {16u, 32u, 64u, 128u, 256u, 512u}) {
    Workload w = BuildWorkload(presets::NytTrips(env.DefaultUsers()),
                               presets::NyBusRoutes(nf, env.DefaultStops()),
                               model, env.DefaultBeta());
    PrintRow("N=" + std::to_string(nf), Measure(&w, env.DefaultK()));
  }
  return 0;
}
