// §VI-B.4 "Index construction time": TQ(B) and TQ(Z) build times over the
// NYT user sweep (paper: 0.74-3.74 s for TQ(B), 1.03-9.95 s for TQ(Z) at
// full scale in Java).
#include <cstdio>

#include "bench_util.h"

using namespace tq;          // NOLINT(build/namespaces)
using namespace tq::bench;   // NOLINT(build/namespaces)

int main() {
  const BenchEnv env = BenchEnv::FromEnv();
  std::printf("Index construction time (scale=%.3f)\n", env.scale);
  Banner("build seconds vs #user trajectories (NYT)");
  PrintSeriesHeader({"BL_quadtree", "TQ_B", "TQ_Z"});
  const std::vector<const char*> day_labels = {"0.5d", "1d", "2d", "3d"};
  const std::vector<size_t> sweep = presets::NytUserSweep(env.scale);
  const ServiceModel model = ServiceModel::Endpoints(env.DefaultPsi());
  for (size_t i = 0; i < sweep.size(); ++i) {
    const TrajectorySet users = presets::NytTrips(sweep[i]);
    double t_bl = 0, t_b = 0, t_z = 0;
    {
      Timer t;
      PointQuadtree pq(users.BoundingBox().Expanded(1.0), 128);
      pq.InsertAll(users);
      t_bl = t.ElapsedSeconds();
    }
    {
      TQTreeOptions opt;
      opt.beta = env.DefaultBeta();
      opt.model = model;
      opt.variant = IndexVariant::kBasic;
      Timer t;
      const TQTree tree(&users, opt);
      t_b = t.ElapsedSeconds();
    }
    {
      TQTreeOptions opt;
      opt.beta = env.DefaultBeta();
      opt.model = model;
      opt.variant = IndexVariant::kZOrder;
      Timer t;
      const TQTree tree(&users, opt);
      t_z = t.ElapsedSeconds();
      std::printf("# TQ(Z) %s stats: %s\n", day_labels[i],
                  tree.ComputeStats().ToString().c_str());
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%s(%zu)", day_labels[i], sweep[i]);
    PrintTimeRow(label, {"BL_quadtree", "TQ_B", "TQ_Z"}, {t_bl, t_b, t_z});
  }
  return 0;
}
