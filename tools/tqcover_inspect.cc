// tqcover_inspect: renders a TQ-tree, a facility route, and the users it
// serves as an SVG — the fastest way to *see* why the index prunes well (or
// doesn't) on a given workload.
//
//   tqcover_inspect --users trips.bin --facilities routes.bin
//                   --facility 4 --out picture.svg [--psi 200] [--beta 64]
//
// Rendering: q-node rectangles (thicker = higher level), z-bucket counts as
// node opacity, facility stops as dots joined by the route polyline, served
// users as green segments, candidate-but-unserved as amber, the EMBR as a
// dashed border.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "query/eval_service.h"
#include "tqtree/tq_tree.h"
#include "traj/io.h"

namespace {

using tq::Status;

struct Args {
  std::map<std::string, std::string> kv;
  std::string Get(const std::string& key, const std::string& def = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::stod(it->second);
  }
};

class SvgWriter {
 public:
  SvgWriter(std::ostream& os, const tq::Rect& world, double pixels)
      : os_(os),
        world_(world),
        scale_(pixels / std::max(world.Width(), world.Height())) {
    os_ << "<svg xmlns='http://www.w3.org/2000/svg' width='"
        << world.Width() * scale_ << "' height='" << world.Height() * scale_
        << "' style='background:#10141a'>\n";
  }
  ~SvgWriter() { os_ << "</svg>\n"; }

  double X(double x) const { return (x - world_.min_x) * scale_; }
  // SVG y grows downward; flip so north is up.
  double Y(double y) const { return (world_.max_y - y) * scale_; }

  void RectOutline(const tq::Rect& r, const std::string& stroke,
                   double width, const std::string& extra = "") {
    os_ << "<rect x='" << X(r.min_x) << "' y='" << Y(r.max_y) << "' width='"
        << r.Width() * scale_ << "' height='" << r.Height() * scale_
        << "' fill='none' stroke='" << stroke << "' stroke-width='" << width
        << "' " << extra << "/>\n";
  }
  void Line(const tq::Point& a, const tq::Point& b, const std::string& color,
            double width) {
    os_ << "<line x1='" << X(a.x) << "' y1='" << Y(a.y) << "' x2='" << X(b.x)
        << "' y2='" << Y(b.y) << "' stroke='" << color << "' stroke-width='"
        << width << "'/>\n";
  }
  void Dot(const tq::Point& p, double radius, const std::string& color) {
    os_ << "<circle cx='" << X(p.x) << "' cy='" << Y(p.y) << "' r='"
        << radius << "' fill='" << color << "'/>\n";
  }

 private:
  std::ostream& os_;
  tq::Rect world_;
  double scale_;
};

bool IsBinaryPath(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

Status LoadSet(const std::string& path, tq::TrajectorySet* out) {
  return IsBinaryPath(path) ? tq::LoadTrajectoryBinary(path, out)
                            : tq::LoadTrajectoryCsv(path, out);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (argv[i][0] != '-') break;
    args.kv[argv[i] + 2] = argv[i + 1];
  }
  const std::string users_path = args.Get("users");
  const std::string facs_path = args.Get("facilities");
  const std::string out_path = args.Get("out", "tqcover.svg");
  if (users_path.empty() || facs_path.empty()) {
    std::fprintf(stderr,
                 "usage: tqcover_inspect --users FILE --facilities FILE "
                 "[--facility ID] [--psi 200] [--beta 64] [--out FILE.svg]\n");
    return 2;
  }
  tq::TrajectorySet users, facilities;
  Status st = LoadSet(users_path, &users);
  if (st.ok()) st = LoadSet(facs_path, &facilities);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto facility =
      static_cast<uint32_t>(args.GetDouble("facility", 0));
  if (facility >= facilities.size()) {
    std::fprintf(stderr, "facility %u out of range (%zu routes)\n", facility,
                 facilities.size());
    return 2;
  }
  const double psi = args.GetDouble("psi", 200.0);
  const tq::ServiceModel model = tq::ServiceModel::Endpoints(psi);
  tq::TQTreeOptions opt;
  opt.beta = static_cast<size_t>(args.GetDouble("beta", 64));
  opt.model = model;
  tq::TQTree tree(&users, opt);
  const tq::ServiceEvaluator eval(&users, model);
  const tq::StopGrid grid(facilities.points(facility), psi);

  std::ofstream os(out_path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  {
    SvgWriter svg(os, tree.world(), 1600.0);
    // Q-node skeleton: deeper nodes thinner and dimmer.
    for (size_t i = 0; i < tree.num_nodes(); ++i) {
      const tq::TQNode& n = tree.node(static_cast<int32_t>(i));
      const double width = std::max(0.3, 2.5 - 0.35 * n.depth);
      svg.RectOutline(n.rect, "#2d3d55", width);
    }
    // Users: draw a sample (up to 4000) as segments, colour by service.
    const size_t step = std::max<size_t>(1, users.size() / 4000);
    for (uint32_t u = 0; u < users.size(); u += step) {
      const auto pts = users.points(u);
      const bool served = eval.Evaluate(u, grid) > 0.0;
      const bool touched =
          grid.Serves(pts.front()) || grid.Serves(pts.back());
      const char* color =
          served ? "#37d67a" : (touched ? "#e8a33d" : "#3a4350");
      for (size_t i = 1; i < pts.size(); ++i) {
        svg.Line(pts[i - 1], pts[i], color, served ? 1.4 : 0.7);
      }
    }
    // Facility EMBR + route + stops on top.
    svg.RectOutline(grid.embr(), "#e4573d", 2.0,
                    "stroke-dasharray='8 5'");
    const auto stops = facilities.points(facility);
    for (size_t i = 1; i < stops.size(); ++i) {
      svg.Line(stops[i - 1], stops[i], "#e4573d", 2.2);
    }
    for (const tq::Point& s : stops) svg.Dot(s, 3.2, "#ffd166");
  }
  os.flush();
  double so = 0.0;
  for (uint32_t u = 0; u < users.size(); ++u) so += eval.Evaluate(u, grid);
  std::printf("wrote %s — facility %u serves SO=%.0f of %zu users "
              "(psi=%.0fm)\n",
              out_path.c_str(), facility, so, users.size(), psi);
  return 0;
}
