// tqcover command-line tool: generate workloads, inspect datasets, and run
// kMaxRRST / MaxkCovRST queries on CSV or binary trajectory files without
// writing any C++.
//
//   tqcover_cli generate --preset nyt --n 100000 --out trips.bin
//   tqcover_cli generate --preset nybus --n 128 --stops 64 --out routes.bin
//   tqcover_cli stats    --in trips.bin
//   tqcover_cli topk     --users trips.bin --facilities routes.bin --k 8
//   tqcover_cli cover    --users trips.bin --facilities routes.bin --k 8
//   tqcover_cli topk ... --save-index trips.tqt   # persist the TQ-tree
//   tqcover_cli topk ... --load-index trips.tqt   # reuse it
//   tqcover_cli serve    --users trips.bin --facilities routes.bin
//                        --threads 4 --queries 2000   # concurrent runtime
//   tqcover_cli serve    ... --shards 8   # scatter/gather over 8 TQ-trees
//   tqcover_cli serve    ... --listen 7070   # TCP front-end (net/server.h)
//   tqcover_cli stats 127.0.0.1:7070         # scrape a live server's
//                                            # metrics/histograms/traces
//   tqcover_cli query 127.0.0.1:7070 --sums 500 --topks 20   # drive traffic
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "cover/genetic.h"
#include "cover/greedy.h"
#include "datagen/presets.h"
#include "net/client.h"
#include "net/server.h"
#include "query/baseline.h"
#include "query/topk.h"
#include "runtime/engine.h"
#include "runtime/remote_shard_set.h"
#include "runtime/sharded_engine.h"
#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "tqtree/serialize.h"
#include "traj/io.h"
#include "traj/stats.h"

namespace {

using tq::Status;

struct Args {
  std::string command;
  std::string target;  // optional positional HOST:PORT after the command
  std::map<std::string, std::string> kv;

  std::string Get(const std::string& key, const std::string& def = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : it->second;
  }
  size_t GetSize(const std::string& key, size_t def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : static_cast<size_t>(std::stoull(it->second));
  }
  double GetDouble(const std::string& key, double def) const {
    const auto it = kv.find(key);
    return it == kv.end() ? def : std::stod(it->second);
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: tqcover_cli <command> [--key value ...]\n"
      "commands:\n"
      "  generate --preset nyt|nyf|bjg|nybus|bjbus --n N [--stops S]\n"
      "           --out FILE [--format bin|csv]\n"
      "  stats    --in FILE            # dataset statistics, or:\n"
      "  stats    HOST:PORT [--traces N]   # scrape a live server's\n"
      "           metrics, per-op latency histograms, and recent traces\n"
      "  query    HOST:PORT [--sums N] [--topks M] [--k 8] [--batch 16]\n"
      "           [--facility-range 8]   # drive sync traffic at a server\n"
      "           [--dump FILE]  # write every answer as hex-float lines\n"
      "                          # (byte-diffable across processes)\n"
      "           [--updates N [--update-size 4] [--update-removes 0]\n"
      "            [--update-remove-start 0]]  # N acked kUpdate frames\n"
      "                          # first: synthetic inserts + sequential\n"
      "                          # id removes (crash-recovery CI traffic)\n"
      "  flood    HOST:PORT [--frames 2000] [--batch 256] [--topk 0]\n"
      "           [--facility-range 8] [--stall-ms 0] [--rcvbuf-kb 16]\n"
      "                          # ADVERSARIAL client: pipeline every frame\n"
      "                          # without reading, stonewall --stall-ms,\n"
      "                          # then drain; exit 0 iff every frame got a\n"
      "                          # well-formed answer (served or shed)\n"
      "  status   HOST:PORT     # a serving process's identity, and (on a\n"
      "           coordinator) the per-worker liveness/RTT table\n"
      "  topk     --users FILE --facilities FILE [--k 8] [--psi 200]\n"
      "           [--scenario endpoints|points|length] [--method tqz|tqb|bl|blr]\n"
      "           [--mode whole|segmented] [--beta 64]\n"
      "           [--save-index FILE] [--load-index FILE]\n"
      "  cover    --users FILE --facilities FILE [--k 8] [--psi 200]\n"
      "           [--scenario ...] [--solver greedy|genetic|baseline]\n"
      "  serve    --users FILE --facilities FILE [--threads 4] [--shards 1]\n"
      "           [--queries 1000] [--topk-every 0] [--k 8] [--psi 200]\n"
      "           [--scenario ...] [--beta 64] [--cache 4096]\n"
      "           [--updates 0] [--update-size 64] [--update-batch 1]\n"
      "           [--prune 1]   # sharded top-k: bound-and-prune (0 =\n"
      "                         # exhaustive per-shard sweeps, same answers)\n"
      "           [--prune-skip-ratio 0.5]  # go exhaustive once k reaches\n"
      "                                     # this fraction of |facilities|\n"
      "           [--listen PORT [--duration S]]  # serve the binary TCP\n"
      "                         # protocol (docs/PROTOCOL.md) instead of a\n"
      "                         # local query loop; 0 = ephemeral port;\n"
      "                         # runs S seconds (default: until SIGINT)\n"
      "           [--max-outbox-kb KB]  # with --listen: per-connection\n"
      "                         # response-backlog high watermark (default\n"
      "                         # 4096, resume at half; 0 = unbounded) — at\n"
      "                         # KB staged bytes the server stops reading\n"
      "                         # that connection until the peer drains\n"
      "           [--max-queued N]  # with --listen: answer read queries\n"
      "                         # with in-protocol kOverloaded once N\n"
      "                         # engine calls are queued (0 = never shed,\n"
      "                         # the default)\n"
      "           [--worker LO:HI]  # with --listen and --shards N: own only\n"
      "                         # the Z-order shard range [LO, HI) of the\n"
      "                         # N-way partition (a shard-worker process)\n"
      "           [--data-dir DIR]  # durable serving: WAL every update\n"
      "                         # batch, recover from DIR's checkpoint on\n"
      "                         # restart (docs/DURABILITY.md)\n"
      "           [--wal-sync always|batch|off] [--checkpoint-interval-ms 0]\n"
      "           [--compact 1]  # round-trip shard trees into fresh dense\n"
      "                          # pages after each checkpoint\n"
      "  serve    --coordinator --workers HOST:PORT,... --listen PORT\n"
      "           [--rpc-timeout-ms 2000] [--heartbeat-ms 1000]\n"
      "           [--heartbeat-timeout-ms 5000] [--prune 1]\n"
      "           [--data-dir DIR]  # persist the verified worker set into\n"
      "                         # DIR so a restart can omit --workers\n"
      "                         # no local data: serve by scatter/gather\n"
      "                         # over shard-worker processes\n"
      "           [--slow-query-ms N]  # log '# slow:' JSON trace lines for\n"
      "                         # queries/frames taking >= N ms (0 = all)\n"
      "           [--stats-interval S] # with --listen: print a '# json:'\n"
      "                         # metrics line every S seconds\n"
      "files: .bin (packed binary) or anything else (CSV x1,y1;x2,y2;...)\n");
  return 2;
}

bool IsBinaryPath(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

Status LoadSet(const std::string& path, tq::TrajectorySet* out) {
  return IsBinaryPath(path) ? tq::LoadTrajectoryBinary(path, out)
                            : tq::LoadTrajectoryCsv(path, out);
}

Status SaveSet(const std::string& path, const tq::TrajectorySet& set) {
  return IsBinaryPath(path) ? tq::SaveTrajectoryBinary(path, set)
                            : tq::SaveTrajectoryCsv(path, set);
}

tq::ServiceModel ModelFromArgs(const Args& args) {
  const double psi = args.GetDouble("psi", 200.0);
  const std::string scenario = args.Get("scenario", "endpoints");
  if (scenario == "points") return tq::ServiceModel::PointCount(psi);
  if (scenario == "length") return tq::ServiceModel::Length(psi);
  return tq::ServiceModel::Endpoints(psi);
}

int CmdGenerate(const Args& args) {
  const std::string preset = args.Get("preset", "nyt");
  const std::string out = args.Get("out");
  if (out.empty()) return Usage();
  const size_t n = args.GetSize("n", 10000);
  const size_t stops = args.GetSize("stops", 64);
  tq::TrajectorySet set;
  if (preset == "nyt") {
    set = tq::presets::NytTrips(n);
  } else if (preset == "nyf") {
    set = tq::presets::NyfCheckins(n);
  } else if (preset == "bjg") {
    set = tq::presets::BjgTraces(n);
  } else if (preset == "nybus") {
    set = tq::presets::NyBusRoutes(n, stops);
  } else if (preset == "bjbus") {
    set = tq::presets::BjBusRoutes(n, stops);
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }
  const Status st = SaveSet(out, set);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu trajectories (%zu points) to %s\n", set.size(),
              set.TotalPoints(), out.c_str());
  return 0;
}

bool ParseHostPort(const std::string& target, std::string* host,
                   uint16_t* port) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == target.size()) {
    return false;
  }
  *host = target.substr(0, colon);
  const unsigned long p = std::stoul(target.substr(colon + 1));
  if (p == 0 || p > 65535) return false;
  *port = static_cast<uint16_t>(p);
  return true;
}

int ConnectTo(const std::string& target, tq::net::NetClient* client) {
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(target, &host, &port)) {
    std::fprintf(stderr, "bad HOST:PORT '%s'\n", target.c_str());
    return 2;
  }
  const Status st = client->Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

// stats HOST:PORT — scrape a live server's kStats frame: counters, per-op
// latency percentiles, and its slowest recent traces with per-shard spans.
// The trailing '# json:' line is the machine-parsable form (CI reads it).
int CmdStatsNet(const Args& args) {
  tq::net::NetClient client;
  const int rc = ConnectTo(args.target, &client);
  if (rc != 0) return rc;
  const auto max_traces =
      static_cast<uint32_t>(args.GetSize("traces", 8));
  tq::net::NetResponse resp;
  const Status st = client.Stats(max_traces, &resp);
  if (!st.ok() || !resp.status.ok()) {
    std::fprintf(stderr, "%s\n",
                 (st.ok() ? resp.status : st).ToString().c_str());
    return 1;
  }
  std::printf("server snapshot version: %llu\n",
              static_cast<unsigned long long>(resp.snapshot_version));
  std::printf("%-16s %10s %10s %10s %10s %10s\n", "op", "count",
              "p50_ms", "p90_ms", "p99_ms", "max_ms");
  for (const tq::net::WireHistogram& h : resp.stats.histograms) {
    std::printf("%-16s %10llu %10.3f %10.3f %10.3f %10.3f\n",
                h.name.c_str(), static_cast<unsigned long long>(h.count),
                static_cast<double>(h.p50_ns) / 1e6,
                static_cast<double>(h.p90_ns) / 1e6,
                static_cast<double>(h.p99_ns) / 1e6,
                static_cast<double>(h.max_ns) / 1e6);
  }
  if (!resp.stats.traces.empty()) {
    std::printf("slowest recent traces:\n");
    for (const tq::net::WireTrace& t : resp.stats.traces) {
      std::printf("  %s(%llu) %.3f ms @v%llu, %zu spans%s\n", t.op.c_str(),
                  static_cast<unsigned long long>(t.detail),
                  static_cast<double>(t.total_ns) / 1e6,
                  static_cast<unsigned long long>(t.snapshot_version),
                  t.spans.size(), t.dropped_spans ? " (spans dropped)" : "");
      for (const tq::net::WireSpan& s : t.spans) {
        std::printf("    %-14s shard %3d  %9.1f us .. %9.1f us\n",
                    s.name.c_str(), s.shard,
                    static_cast<double>(s.start_ns) / 1e3,
                    static_cast<double>(s.end_ns) / 1e3);
      }
    }
  }
  std::printf("# json: %s\n", tq::net::WireStatsToJson(resp.stats).c_str());
  return 0;
}

// status HOST:PORT — one kStatus frame: the process's identity (partition
// geometry) and, when it is a coordinator, the per-worker liveness table.
// The '# json:' line is the machine-parsable form (CI reads it).
int CmdStatusNet(const Args& args) {
  if (args.target.empty()) return Usage();
  tq::net::NetClient client;
  const int rc = ConnectTo(args.target, &client);
  if (rc != 0) return rc;
  tq::net::NetResponse resp;
  const Status st = client.ClusterStatus(&resp);
  if (!st.ok() || !resp.status.ok()) {
    std::fprintf(stderr, "%s\n",
                 (st.ok() ? resp.status : st).ToString().c_str());
    return 1;
  }
  const tq::net::WireWorkerInfo& self = resp.worker_info;
  std::printf("self: %u shards, owned [%u, %u), psi %.1f, %u facilities, "
              "%llu users, snapshot v%llu\n",
              self.num_shards, self.owned_begin, self.owned_end, self.psi,
              self.num_facilities,
              static_cast<unsigned long long>(self.users_total),
              static_cast<unsigned long long>(resp.snapshot_version));
  if (!resp.workers.empty()) {
    std::printf("%-22s %-12s %-12s %6s %5s %8s %10s %10s\n", "worker",
                "state", "owned", "beats", "fails", "age_ms", "p50_ms",
                "p99_ms");
    for (const tq::net::WireWorkerStatus& w : resp.workers) {
      const char* state = w.state == 1   ? "alive"
                          : w.state == 2 ? "dead"
                                         : "unregistered";
      char owned[32];
      std::snprintf(owned, sizeof(owned), "[%u,%u)", w.owned_begin,
                    w.owned_end);
      std::printf("%-22s %-12s %-12s %6llu %5llu %8llu %10.3f %10.3f\n",
                  w.address.c_str(), state, owned,
                  static_cast<unsigned long long>(w.heartbeats),
                  static_cast<unsigned long long>(w.failures),
                  static_cast<unsigned long long>(w.age_ms),
                  static_cast<double>(w.rtt_p50_ns) / 1e6,
                  static_cast<double>(w.rtt_p99_ns) / 1e6);
    }
  }
  const tq::net::WireDurability& d = resp.durability;
  if (d.durable()) {
    std::printf("durability: checkpoint lsn %llu, last lsn %llu%s",
                static_cast<unsigned long long>(d.checkpoint_lsn),
                static_cast<unsigned long long>(d.last_lsn),
                d.recovered() ? ", recovered" : "");
    if (d.recovered()) {
      std::printf(" (%llu batches replayed in %.3f ms%s)",
                  static_cast<unsigned long long>(d.replayed_batches),
                  static_cast<double>(d.recovery_ns) / 1e6,
                  d.wal_torn_tail() ? ", torn tail truncated" : "");
    }
    std::printf("\n");
  }
  std::printf("# json: %s\n",
              tq::net::WireStatusToJson(self, resp.workers, d).c_str());
  return 0;
}

// query HOST:PORT — a sync traffic driver (CI uses it to exercise a live
// server before scraping stats). Sends sum and top-k frames of --batch
// queries each over one connection. --dump FILE additionally writes every
// answer as %a hex-float lines — bit-exact, so CI can byte-diff a
// coordinator's answers against a single-process server's.
int CmdQuery(const Args& args) {
  if (args.target.empty()) return Usage();
  tq::net::NetClient client;
  const int rc = ConnectTo(args.target, &client);
  if (rc != 0) return rc;
  const size_t sums = args.GetSize("sums", 100);
  const size_t topks = args.GetSize("topks", 0);
  const size_t batch = std::max<size_t>(1, args.GetSize("batch", 16));
  const auto k = static_cast<uint32_t>(args.GetSize("k", 8));
  const size_t facility_range =
      std::max<size_t>(1, args.GetSize("facility-range", 8));
  const std::string dump_path = args.Get("dump");
  FILE* dump = nullptr;
  if (!dump_path.empty()) {
    dump = std::fopen(dump_path.c_str(), "w");
    if (dump == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   dump_path.c_str());
      return 1;
    }
  }
  // Acked write traffic first: each frame inserts deterministic synthetic
  // trajectories and/or removes sequential global ids, and the response is
  // awaited — against a durable server every acknowledged batch is in the
  // WAL, which is exactly what the CI crash-recovery gate leans on.
  const size_t updates = args.GetSize("updates", 0);
  const size_t update_size =
      std::max<size_t>(1, args.GetSize("update-size", 4));
  const size_t update_removes = args.GetSize("update-removes", 0);
  auto next_remove =
      static_cast<uint32_t>(args.GetSize("update-remove-start", 0));
  size_t inserted = 0, removed = 0;
  for (size_t u = 0; u < updates; ++u) {
    std::vector<std::vector<tq::Point>> inserts;
    for (size_t t = 0; t < update_size; ++t) {
      const auto base = static_cast<double>(u * update_size + t);
      std::vector<tq::Point> traj;
      for (size_t p = 0; p < 4; ++p) {
        traj.push_back(tq::Point{base * 97.0 + static_cast<double>(p) * 13.0,
                                 base * 61.0 + static_cast<double>(p) * 7.0});
      }
      inserts.push_back(std::move(traj));
    }
    std::vector<uint32_t> removes;
    for (size_t r = 0; r < update_removes; ++r) {
      removes.push_back(next_remove++);
    }
    tq::net::NetResponse resp;
    const Status st = client.Update(std::move(inserts), std::move(removes),
                                    &resp);
    if (!st.ok() || !resp.status.ok()) {
      std::fprintf(stderr, "update %zu: %s\n", u,
                   (st.ok() ? resp.status : st).ToString().c_str());
      if (dump != nullptr) std::fclose(dump);
      return 1;
    }
    inserted += resp.assigned_ids.size();
    removed += update_removes;
  }
  if (updates > 0) {
    std::printf("applied %zu acked update batches (%zu inserts, "
                "%zu removes)\n",
                updates, inserted, removed);
  }
  double checksum = 0.0;
  size_t sum_errors = 0;
  tq::Timer timer;
  for (size_t done = 0; done < sums;) {
    const size_t n = std::min(batch, sums - done);
    std::vector<tq::FacilityId> ids(n);
    for (size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<tq::FacilityId>((done + i) % facility_range);
    }
    tq::net::NetResponse resp;
    const Status st = client.Sum(ids, &resp);
    if (!st.ok() || !resp.status.ok()) {
      std::fprintf(stderr, "%s\n",
                   (st.ok() ? resp.status : st).ToString().c_str());
      if (dump != nullptr) std::fclose(dump);
      return 1;
    }
    for (size_t i = 0; i < resp.sums.size(); ++i) {
      const tq::net::SumResult& r = resp.sums[i];
      if (r.code == tq::StatusCode::kOk) checksum += r.value;
      else ++sum_errors;
      if (dump != nullptr) {
        std::fprintf(dump, "sum %zu %u %a\n", done + i, ids[i], r.value);
      }
    }
    done += n;
  }
  for (size_t done = 0; done < topks;) {
    const size_t n = std::min(batch, topks - done);
    tq::net::NetResponse resp;
    const Status st =
        client.TopK(std::vector<uint32_t>(n, k), &resp);
    if (!st.ok() || !resp.status.ok()) {
      std::fprintf(stderr, "%s\n",
                   (st.ok() ? resp.status : st).ToString().c_str());
      if (dump != nullptr) std::fclose(dump);
      return 1;
    }
    if (dump != nullptr) {
      for (size_t i = 0; i < resp.topks.size(); ++i) {
        std::fprintf(dump, "topk %zu %u", done + i, k);
        for (const tq::RankedFacility& rf : resp.topks[i].ranked) {
          std::fprintf(dump, " %u:%a", rf.id, rf.value);
        }
        std::fprintf(dump, "\n");
      }
    }
    done += n;
  }
  if (dump != nullptr) std::fclose(dump);
  std::printf("sent %zu sum + %zu top-%u queries in %.3f s "
              "(checksum %.3f, %zu per-query errors)\n",
              sums, topks, k, timer.ElapsedSeconds(), checksum, sum_errors);
  return 0;
}

// flood HOST:PORT — an ADVERSARIAL client: pipelines --frames request
// frames as fast as the kernel accepts without reading a single response
// byte, optionally keeps stonewalling for --stall-ms after the pipe fills
// (the phase in which a healthy server must pause this connection at its
// outbox watermark instead of buffering the owed responses), then drains
// everything and reports how each frame was answered. With --topk K and
// --batch B each frame carries B top-k queries, so a --max-queued server
// sheds most of the burst with in-protocol kOverloaded answers. Exits 0
// only when every pipelined frame got SOME well-formed answer — served or
// shed, never dropped. The CI overload-smoke job runs this against a real
// serve process and gates the server's RSS and counters meanwhile.
int CmdFlood(const Args& args) {
  if (args.target.empty()) return Usage();
  std::string host;
  uint16_t port = 0;
  if (!ParseHostPort(args.target, &host, &port)) {
    std::fprintf(stderr, "bad HOST:PORT '%s'\n", args.target.c_str());
    return 2;
  }
  const size_t frames = std::max<size_t>(1, args.GetSize("frames", 2000));
  const size_t batch = std::max<size_t>(1, args.GetSize("batch", 256));
  const auto topk = static_cast<uint32_t>(args.GetSize("topk", 0));
  const size_t facility_range =
      std::max<size_t>(1, args.GetSize("facility-range", 8));
  const size_t stall_ms = args.GetSize("stall-ms", 0);
  const size_t rcvbuf_kb = args.GetSize("rcvbuf-kb", 16);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  if (rcvbuf_kb > 0) {
    // Before connect(): a small advertised window makes the server hit its
    // watermarks with far less kernel-buffered slack.
    const int rcvbuf = static_cast<int>(rcvbuf_kb * 1024);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "flood needs a numeric IPv4 host, got '%s'\n",
                 host.c_str());
    ::close(fd);
    return 2;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }

  // One frame, repeated: either a sum batch or a top-k batch.
  std::string one;
  if (topk > 0) {
    tq::net::EncodeRequest(
        tq::net::NetRequest::TopK(std::vector<uint32_t>(batch, topk)), &one);
  } else {
    std::vector<tq::FacilityId> ids(batch);
    for (size_t i = 0; i < batch; ++i) {
      ids[i] = static_cast<tq::FacilityId>(i % facility_range);
    }
    tq::net::EncodeRequest(tq::net::NetRequest::Sum(ids), &one);
  }
  std::string burst;
  burst.reserve(one.size() * frames);
  for (size_t i = 0; i < frames; ++i) burst += one;

  // Blocking firehose on its own thread; the main thread stonewalls.
  std::atomic<bool> sent_all{false};
  std::thread sender([fd, &burst, &sent_all] {
    size_t off = 0;
    while (off < burst.size()) {
      const ssize_t n =
          ::send(fd, burst.data() + off, burst.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;
      }
      off += static_cast<size_t>(n);
    }
    sent_all.store(true);
  });
  if (stall_ms > 0) {
    std::printf("flood: pipelining %zu frames (%zu bytes), stonewalling "
                "%zu ms before reading\n",
                frames, burst.size(), stall_ms);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }

  // Drain every response, classifying per-frame outcomes.
  size_t ok = 0, overloaded = 0, other = 0;
  tq::Timer timer;
  {
    tq::net::FrameAssembler assembler;
    char buf[64 << 10];
    size_t answered = 0;
    while (answered < frames) {
      std::string payload;
      if (assembler.Next(&payload) ==
          tq::net::FrameAssembler::Result::kFrame) {
        tq::net::NetResponse resp;
        if (!tq::net::DecodeResponse(payload, &resp).ok()) {
          ++other;
        } else if (resp.status.ok()) {
          ++ok;
        } else if (resp.status.code() == tq::StatusCode::kOverloaded) {
          ++overloaded;
        } else {
          ++other;
        }
        ++answered;
        continue;
      }
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;  // EOF / error: the missing frames count below
      assembler.Feed(buf, static_cast<size_t>(n));
    }
  }
  sender.join();
  ::close(fd);

  const size_t answered = ok + overloaded + other;
  std::printf("flood: %zu/%zu frames answered in %.3f s — %zu served, "
              "%zu overloaded, %zu other\n",
              answered, frames, timer.ElapsedSeconds(), ok, overloaded,
              other);
  std::printf("# json: {\"flood\":true,\"frames\":%zu,\"answered\":%zu,"
              "\"served\":%zu,\"overloaded\":%zu,\"other\":%zu,"
              "\"sent_all\":%s,\"drain_s\":%.3f}\n",
              frames, answered, ok, overloaded, other,
              sent_all.load() ? "true" : "false", timer.ElapsedSeconds());
  if (!sent_all.load()) {
    std::fprintf(stderr, "flood: send side aborted early\n");
    return 1;
  }
  if (answered != frames || other != 0) {
    std::fprintf(stderr, "flood: %zu frames unanswered, %zu malformed/"
                 "unexpected\n", frames - answered, other);
    return 1;
  }
  return 0;
}

int CmdStats(const Args& args) {
  if (!args.target.empty()) return CmdStatsNet(args);
  const std::string in = args.Get("in");
  if (in.empty()) return Usage();
  tq::TrajectorySet set;
  const Status st = LoadSet(in, &set);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", tq::ComputeStats(set).ToString(in).c_str());
  const tq::Rect e = set.BoundingBox();
  std::printf("extent: [%.1f, %.1f] x [%.1f, %.1f] m\n", e.min_x, e.max_x,
              e.min_y, e.max_y);
  return 0;
}

int CmdTopK(const Args& args) {
  tq::TrajectorySet users, facilities;
  Status st = LoadSet(args.Get("users"), &users);
  if (st.ok()) st = LoadSet(args.Get("facilities"), &facilities);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const tq::ServiceModel model = ModelFromArgs(args);
  const size_t k = args.GetSize("k", 8);
  const std::string method = args.Get("method", "tqz");
  const tq::ServiceEvaluator evaluator(&users, model);
  const tq::FacilityCatalog catalog(&facilities, model.psi);

  tq::TopKResult result;
  if (method == "bl") {
    tq::PointQuadtree pq(users.BoundingBox().Expanded(1.0), 128);
    pq.InsertAll(users);
    result = tq::TopKFacilitiesBaseline(pq, catalog, evaluator, k);
  } else if (method == "blr") {
    const tq::PointRTree rt = tq::PointRTree::FromTrajectories(users);
    result = tq::TopKFacilitiesBaselineRTree(rt, catalog, evaluator, k);
  } else {
    tq::TQTreeOptions opt;
    opt.beta = args.GetSize("beta", 64);
    opt.model = model;
    opt.variant = method == "tqb" ? tq::IndexVariant::kBasic
                                  : tq::IndexVariant::kZOrder;
    opt.mode = args.Get("mode", "whole") == "segmented"
                   ? tq::TrajMode::kSegmented
                   : tq::TrajMode::kWhole;
    std::unique_ptr<tq::TQTree> tree;
    const std::string load = args.Get("load-index");
    if (!load.empty()) {
      auto loaded = tq::LoadTQTree(load, &users);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 1;
      }
      tree = std::move(*loaded);
    } else {
      tree = std::make_unique<tq::TQTree>(&users, opt);
    }
    const std::string save = args.Get("save-index");
    if (!save.empty()) {
      const Status sst = tq::SaveTQTree(save, *tree);
      if (!sst.ok()) {
        std::fprintf(stderr, "%s\n", sst.ToString().c_str());
        return 1;
      }
      std::printf("index saved to %s\n", save.c_str());
    }
    result = tq::TopKFacilitiesTQ(tree.get(), catalog, evaluator, k);
  }
  std::printf("top-%zu facilities by %s service:\n", k,
              model.ToString().c_str());
  for (size_t i = 0; i < result.ranked.size(); ++i) {
    std::printf("%3zu. facility %-6u SO = %.3f\n", i + 1,
                result.ranked[i].id, result.ranked[i].value);
  }
  return 0;
}

int CmdCover(const Args& args) {
  tq::TrajectorySet users, facilities;
  Status st = LoadSet(args.Get("users"), &users);
  if (st.ok()) st = LoadSet(args.Get("facilities"), &facilities);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const tq::ServiceModel model = ModelFromArgs(args);
  const size_t k = args.GetSize("k", 8);
  const std::string solver = args.Get("solver", "greedy");
  const tq::ServiceEvaluator evaluator(&users, model);
  const tq::FacilityCatalog catalog(&facilities, model.psi);

  tq::CoverResult result;
  if (solver == "baseline") {
    tq::PointQuadtree pq(users.BoundingBox().Expanded(1.0), 128);
    pq.InsertAll(users);
    result = tq::GreedyCoverBaseline(pq, catalog, evaluator, k);
  } else {
    tq::TQTreeOptions opt;
    opt.beta = args.GetSize("beta", 64);
    opt.model = model;
    tq::TQTree tree(&users, opt);
    result = solver == "genetic"
                 ? tq::GeneticCoverTQ(&tree, catalog, evaluator, k)
                 : tq::GreedyCoverTQ(&tree, catalog, evaluator, k);
  }
  std::printf("MaxkCovRST (%s, k=%zu): SO = %.3f, users served = %zu\n",
              solver.c_str(), k, result.total, result.users_served);
  std::printf("chosen:");
  for (const tq::FacilityId f : result.chosen) std::printf(" %u", f);
  std::printf("\n");
  return 0;
}

std::atomic<bool> g_serve_interrupted{false};

void OnServeSignal(int) { g_serve_interrupted.store(true); }

// serve --listen: put the sharded engine behind the TCP front-end
// (src/net/server.h) and block until --duration seconds pass or SIGINT/
// SIGTERM arrives, then report the combined engine + network metrics.
// --slow-query-ms N arms the engine tracer's slow-query log: every finished
// trace at or over the threshold prints one '# slow:' structured JSON line
// (N = 0 logs every trace). Shared by the listen and local serve loops.
void ArmSlowQueryLog(tq::runtime::ServingEngine& engine, const Args& args) {
  if (args.kv.count("slow-query-ms") == 0) return;
  const size_t ms = args.GetSize("slow-query-ms", 0);
  tq::runtime::Tracer* tracer = engine.mutable_tracer();
  tracer->set_slow_threshold_ns(static_cast<uint64_t>(ms) * 1000000ull);
  tracer->SetSlowLogSink([](const std::string& line) {
    std::printf("# slow: %s\n", line.c_str());
    std::fflush(stdout);
  });
}

int RunListenLoop(tq::runtime::ServingEngine& engine, const Args& args) {
  tq::net::NetServerOptions options;
  const size_t port = args.GetSize("listen", 0);
  if (port > 65535) {
    // Catch this before the uint16_t cast silently truncates it into a
    // bind on some unrelated port.
    std::fprintf(stderr, "serve: --listen port %zu out of range\n", port);
    return 1;
  }
  options.port = static_cast<uint16_t>(port);
  options.update_batch = std::max<size_t>(1, args.GetSize("update-batch", 1));
  // Backpressure knobs: --max-outbox-kb moves the per-connection pause
  // watermark (resume at half; 0 disables), --max-queued arms admission
  // control (shed read queries with kOverloaded past that backlog).
  if (args.kv.count("max-outbox-kb") != 0) {
    options.outbox_high_bytes = args.GetSize("max-outbox-kb", 0) * 1024;
    options.outbox_low_bytes = options.outbox_high_bytes / 2;
  }
  options.max_queued = args.GetSize("max-queued", 0);
  ArmSlowQueryLog(engine, args);
  tq::net::NetServer server(&engine, options);
  const Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const size_t duration_s = args.GetSize("duration", 0);
  const size_t stats_interval_s = args.GetSize("stats-interval", 0);
  g_serve_interrupted.store(false);
  std::signal(SIGINT, OnServeSignal);
  std::signal(SIGTERM, OnServeSignal);
  std::printf("listening on 127.0.0.1:%u (update-batch %zu, %s)\n",
              server.port(), options.update_batch,
              duration_s ? "timed run" : "until SIGINT");
  std::fflush(stdout);
  tq::Timer timer;
  double next_stats_s = static_cast<double>(stats_interval_s);
  while (!g_serve_interrupted.load() &&
         (duration_s == 0 || timer.ElapsedSeconds() <
                                 static_cast<double>(duration_s))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (stats_interval_s > 0 && timer.ElapsedSeconds() >= next_stats_s) {
      next_stats_s += static_cast<double>(stats_interval_s);
      std::printf("# json: %s\n",
                  engine.mutable_metrics()->Read().ToJson().c_str());
      std::fflush(stdout);
    }
  }
  server.Stop();
  const tq::runtime::MetricsView m = engine.mutable_metrics()->Read();
  std::printf("served %llu connections, %llu request frames "
              "(%llu bytes in, %llu bytes out)\n",
              static_cast<unsigned long long>(m.net_connections),
              static_cast<unsigned long long>(m.net_requests_decoded),
              static_cast<unsigned long long>(m.net_bytes_in),
              static_cast<unsigned long long>(m.net_bytes_out));
  std::printf("# metrics: %s\n", m.ToJson().c_str());
  return 0;
}

// The serve query/update loop, shared by the unsharded and sharded engines
// (same Submit/ApplyUpdates/metrics protocol). `mirror` is a local copy of
// the engine's user set: both engines assign global ids densely in insertion
// order, so appending each churn batch keeps the mirror's ids aligned with
// the engine's and gives the loop trajectory points to re-insert without
// holding old snapshots alive.
template <typename EngineT>
int RunServeLoop(EngineT& engine, tq::TrajectorySet mirror,
                 const Args& args) {
  const size_t num_queries = args.GetSize("queries", 1000);
  const size_t topk_every = args.GetSize("topk-every", 0);
  const size_t k = args.GetSize("k", 8);
  const size_t num_updates = args.GetSize("updates", 0);
  const size_t update_size = args.GetSize("update-size", 64);
  // --update-batch N coalesces N churn events into ONE forked publish —
  // the cheap-publish path end to end: path-copy cost is paid per batch,
  // not per streamed write. 1 (default) publishes every event, as before.
  const size_t update_batch =
      std::max<size_t>(1, args.GetSize("update-batch", 1));
  const size_t num_facilities = engine.snapshot()->catalog->size();

  tq::Timer serve_timer;
  std::vector<std::future<tq::runtime::QueryResponse>> futures;
  futures.reserve(num_queries);
  tq::runtime::UpdateBatch pending;
  size_t pending_events = 0;
  for (size_t q = 0; q < num_queries; ++q) {
    if (topk_every > 0 && q % topk_every == 0) {
      futures.push_back(engine.Submit(tq::runtime::QueryRequest::TopK(k)));
    } else {
      const auto f = static_cast<tq::FacilityId>(q % num_facilities);
      futures.push_back(
          engine.Submit(tq::runtime::QueryRequest::ServiceValue(f)));
    }
    // Churn: periodically remove and re-insert one trajectory block,
    // exercising the copy-on-write writer mid-stream. Events accumulate in
    // `pending` and publish every `update_batch` events.
    if (num_updates > 0 && q > 0 &&
        q % std::max<size_t>(1, num_queries / num_updates) == 0) {
      for (size_t i = 0; i < update_size && i < mirror.size(); ++i) {
        const auto id = static_cast<uint32_t>((q + i) % mirror.size());
        const auto pts = mirror.points(id);
        pending.inserts.emplace_back(pts.begin(), pts.end());
        pending.removes.push_back(id);
        // Append the private copy, not the span — Add() into the set a
        // span points into would be self-referential.
        mirror.Add(pending.inserts.back());
      }
      if (++pending_events >= update_batch) {
        engine.ApplyUpdates(pending);
        pending = tq::runtime::UpdateBatch{};
        pending_events = 0;
      }
    }
  }
  if (pending_events > 0) engine.ApplyUpdates(pending);
  double checksum = 0.0;
  for (auto& f : futures) checksum += f.get().value;
  const double serve_s = serve_timer.ElapsedSeconds();

  const tq::runtime::MetricsView m = engine.metrics().Read();
  std::printf("served %zu queries in %.3f s — %.0f queries/s "
              "(checksum %.3f)\n",
              num_queries, serve_s,
              static_cast<double>(num_queries) / serve_s, checksum);
  std::printf("snapshot version: %llu\n",
              static_cast<unsigned long long>(engine.snapshot()->version));
  std::printf("cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(m.cache_hits),
              static_cast<unsigned long long>(m.cache_misses),
              100.0 * m.CacheHitRate());
  if (m.facilities_evaluated + m.facilities_pruned > 0) {
    std::printf(
        "top-k pruning: %llu facility-shard slots evaluated, %llu pruned "
        "(%.1f%% skipped) over %llu rounds\n",
        static_cast<unsigned long long>(m.facilities_evaluated),
        static_cast<unsigned long long>(m.facilities_pruned),
        100.0 * static_cast<double>(m.facilities_pruned) /
            static_cast<double>(m.facilities_evaluated +
                                m.facilities_pruned),
        static_cast<unsigned long long>(m.prune_rounds));
  }
  std::printf("# metrics: %s\n", m.ToJson().c_str());
  return 0;
}

// serve --coordinator: no local data at all — dial the given shard-worker
// processes, verify they tile one partition, and serve the same TCP
// protocol by scatter/gather over them (runtime/remote_shard_set.h).
int RunCoordinator(const Args& args) {
  tq::runtime::RemoteShardSetOptions options;
  const std::string data_dir = args.Get("data-dir");
  const std::string list = args.Get("workers");
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string endpoint = list.substr(pos, comma - pos);
    std::string host;
    uint16_t port = 0;
    if (!ParseHostPort(endpoint, &host, &port)) {
      std::fprintf(stderr, "bad worker endpoint '%s'\n", endpoint.c_str());
      return 2;
    }
    options.workers.emplace_back(std::move(host), port);
    pos = comma + 1;
  }
  if (options.workers.empty() && !data_dir.empty()) {
    // Restart path: --workers omitted, recover the set saved by the last
    // successful Connect() under this data dir.
    const Status loaded = tq::runtime::RemoteShardSet::LoadWorkerSet(
        data_dir, &options.workers);
    if (!loaded.ok() && loaded.code() != tq::StatusCode::kNotFound) {
      std::fprintf(stderr, "%s\n", loaded.ToString().c_str());
      return 1;
    }
    if (!options.workers.empty()) {
      std::printf("worker set: %zu endpoints recovered from %s\n",
                  options.workers.size(), data_dir.c_str());
    }
  }
  if (options.workers.empty()) {
    std::fprintf(stderr,
                 "serve --coordinator needs --workers "
                 "HOST:PORT[,HOST:PORT...] (or --data-dir DIR holding a "
                 "saved worker set)\n");
    return 2;
  }
  if (args.kv.count("listen") == 0) {
    std::fprintf(stderr, "serve --coordinator needs --listen PORT\n");
    return 2;
  }
  options.num_threads = std::max<size_t>(1, args.GetSize("threads", 4));
  options.rpc_timeout_ms = args.GetSize("rpc-timeout-ms", 2000);
  options.heartbeat_period_ms = args.GetSize("heartbeat-ms", 1000);
  options.heartbeat_timeout_ms = args.GetSize("heartbeat-timeout-ms", 5000);
  options.prune_topk = args.GetSize("prune", 1) != 0;
  options.prune_skip_ratio = args.GetDouble("prune-skip-ratio", 0.5);
  tq::runtime::RemoteShardSet engine(options);
  const Status st = engine.Connect();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (!data_dir.empty() && !list.empty()) {
    // Persist only a set that just verified its geometry — the restart
    // path above then redials exactly this cluster.
    const Status saved = tq::runtime::RemoteShardSet::SaveWorkerSet(
        data_dir, options.workers);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
  }
  const tq::runtime::EngineInfo info = engine.info();
  std::printf("coordinator up: %zu workers tiling %u shards, "
              "%u facilities, %llu users, psi %.1f\n",
              engine.num_workers(), info.num_shards, info.num_facilities,
              static_cast<unsigned long long>(info.users_total), info.psi);
  return RunListenLoop(engine, args);
}

// Drives the concurrent runtime: a query stream (service values round-robin
// over facilities, optionally interleaved with top-k), with optional update
// batches published mid-stream, then a throughput + metrics report.
// --shards N > 1 serves through the sharded scatter/gather engine.
int CmdServe(const Args& args) {
  if (args.kv.count("coordinator") != 0) return RunCoordinator(args);
  const size_t num_threads = std::max<size_t>(1, args.GetSize("threads", 4));
  const size_t cache_capacity = args.GetSize("cache", 4096);
  const size_t num_shards = std::max<size_t>(1, args.GetSize("shards", 1));
  tq::TQTreeOptions tree;
  tree.beta = args.GetSize("beta", 64);
  tree.model = ModelFromArgs(args);

  // --data-dir DIR: durable serving (WAL + background checkpoints). When
  // the dir already holds a committed checkpoint the engine recovers from
  // it — the --users/--facilities files are not even opened; the checkpoint
  // is self-contained (partition geometry included, so shard workers skip
  // the full user set entirely).
  tq::runtime::DurabilityOptions durability;
  durability.data_dir = args.Get("data-dir");
  if (!durability.data_dir.empty()) {
    const std::string sync = args.Get("wal-sync");
    if (!sync.empty() &&
        !tq::storage::ParseWalSync(sync, &durability.wal_sync)) {
      std::fprintf(stderr,
                   "serve: bad --wal-sync '%s' (want always|batch|off)\n",
                   sync.c_str());
      return 2;
    }
    durability.checkpoint_interval_ms =
        args.GetSize("checkpoint-interval-ms", 0);
    durability.compact_after_checkpoint = args.GetSize("compact", 1) != 0;
  }
  const bool recovering =
      durability.enabled() &&
      tq::storage::CurrentCheckpointDir(durability.data_dir).ok();

  tq::TrajectorySet users, facilities;
  if (!recovering) {
    Status st = LoadSet(args.Get("users"), &users);
    if (st.ok()) st = LoadSet(args.Get("facilities"), &facilities);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    if (facilities.empty()) {
      std::fprintf(stderr, "serve: facility set is empty\n");
      return 1;
    }
  }

  const size_t num_users = users.size();
  const size_t num_facilities = facilities.size();
  // The network front-end always runs over the sharded engine (one shard is
  // fine); a shards=1 --listen run must not fall through to the unsharded
  // engine below.
  const bool listen = args.kv.count("listen") != 0;
  // --worker LO:HI: build trees only for an owned slice of the partition (a
  // shard-worker process behind a coordinator). Only meaningful behind the
  // wire protocol — a local query loop over a slice answers partial sums.
  uint32_t owned_begin = 0;
  uint32_t owned_end = 0;
  const std::string worker = args.Get("worker");
  if (!worker.empty()) {
    unsigned lo = 0;
    unsigned hi = 0;
    if (std::sscanf(worker.c_str(), "%u:%u", &lo, &hi) != 2 || hi <= lo ||
        hi > num_shards) {
      std::fprintf(stderr, "serve: bad --worker range '%s' (want LO:HI "
                           "within 0:%zu)\n",
                   worker.c_str(), num_shards);
      return 2;
    }
    if (!listen) {
      std::fprintf(stderr, "serve: --worker requires --listen\n");
      return 2;
    }
    owned_begin = lo;
    owned_end = hi;
  }
  // The churn mirror costs a full user-set copy — only pay it when update
  // batches are actually requested (see RunServeLoop).
  tq::TrajectorySet mirror;
  if (!listen && args.GetSize("updates", 0) > 0) mirror = users;
  tq::Timer build_timer;
  if (num_shards > 1 || listen || durability.enabled()) {
    tq::runtime::ShardedEngineOptions options;
    options.num_shards = num_shards;
    options.num_threads = num_threads;
    options.cache_capacity = cache_capacity;
    options.prune_topk = args.GetSize("prune", 1) != 0;
    options.prune_skip_ratio = args.GetDouble("prune-skip-ratio", 0.5);
    options.owned_begin = owned_begin;
    options.owned_end = owned_end;
    options.durability = durability;
    options.tree = tree;
    std::unique_ptr<tq::runtime::ShardedEngine> engine;
    if (recovering) {
      auto r = tq::runtime::ShardedEngine::Recover(options);
      if (!r.ok()) {
        std::fprintf(stderr, "recover: %s\n", r.status().ToString().c_str());
        return 1;
      }
      engine = std::move(*r);
      const tq::runtime::RecoveryInfo rec = engine->recovery_info();
      std::printf("recovered from %s: checkpoint lsn %llu + %llu WAL "
                  "batches -> snapshot v%llu%s (%.3f s)\n",
                  durability.data_dir.c_str(),
                  static_cast<unsigned long long>(rec.checkpoint_lsn),
                  static_cast<unsigned long long>(rec.replayed_batches),
                  static_cast<unsigned long long>(rec.last_lsn),
                  rec.wal_torn_tail ? " (torn tail truncated)" : "",
                  static_cast<double>(rec.recovery_ns) / 1e9);
    } else {
      engine = std::make_unique<tq::runtime::ShardedEngine>(
          std::move(users), std::move(facilities), options);
    }
    if (owned_end != 0) {
      std::printf("shard worker up: owns shards [%u, %u) of %zu over %zu "
                  "users, %zu facilities, %zu threads (built in %.3f s)\n",
                  owned_begin, owned_end, engine->num_shards(), num_users,
                  num_facilities, num_threads, build_timer.ElapsedSeconds());
    } else {
      std::printf("sharded engine up: %zu users over %zu shards, "
                  "%zu facilities, %zu threads, top-k %s (built in %.3f s)\n",
                  recovering ? engine->NumUsersTotal() : num_users,
                  engine->num_shards(),
                  recovering ? engine->snapshot()->catalog->size()
                             : num_facilities,
                  num_threads,
                  options.prune_topk ? "bound-and-prune" : "exhaustive",
                  build_timer.ElapsedSeconds());
    }
    if (durability.enabled()) {
      std::printf("durable: data dir %s, wal-sync %s, checkpoint every "
                  "%llu ms%s\n",
                  durability.data_dir.c_str(),
                  tq::storage::WalSyncName(durability.wal_sync),
                  static_cast<unsigned long long>(
                      durability.checkpoint_interval_ms),
                  durability.compact_after_checkpoint ? ", compacting" : "");
    }
    if (listen) return RunListenLoop(*engine, args);
    ArmSlowQueryLog(*engine, args);  // engine-owned traces cover this path
    return RunServeLoop(*engine, std::move(mirror), args);
  }
  tq::runtime::EngineOptions options;
  options.num_threads = num_threads;
  options.cache_capacity = cache_capacity;
  options.tree = tree;
  tq::runtime::Engine engine(std::move(users), std::move(facilities),
                             options);
  std::printf("engine up: %zu users, %zu facilities, %zu threads "
              "(built in %.3f s)\n",
              num_users, num_facilities, num_threads,
              build_timer.ElapsedSeconds());
  return RunServeLoop(engine, std::move(mirror), args);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  int i = 2;
  // Optional positional HOST:PORT target before the --key value pairs
  // (stats and query address a live server this way).
  if (i < argc && std::strncmp(argv[i], "--", 2) != 0) {
    args.target = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage();
    // A key directly followed by another --key (or nothing) is a valueless
    // flag, e.g. --coordinator.
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.kv[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      args.kv[argv[i] + 2] = "1";
    }
  }
  if (args.command == "generate") return CmdGenerate(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "status") return CmdStatusNet(args);
  if (args.command == "query") return CmdQuery(args);
  if (args.command == "flood") return CmdFlood(args);
  if (args.command == "topk") return CmdTopK(args);
  if (args.command == "cover") return CmdCover(args);
  if (args.command == "serve") return CmdServe(args);
  return Usage();
}
